//! Per-file analysis context shared by every rule: the token stream,
//! `#[cfg(test)]` span tracking, the sanction table, and line-indexed
//! token lookup.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// The sanction marker rules look for, e.g.
/// `// lint: allow(unmetered-copy) — header bytes, not payload`.
pub const SANCTION_PREFIX: &str = "lint:";

/// One parsed sanction comment.
#[derive(Debug, Clone)]
pub struct Sanction {
    /// Rule ids listed inside `allow(…)` (comma-separated).
    pub rules: Vec<String>,
    /// Whether a non-empty rationale followed the rule list.
    pub has_rationale: bool,
    /// Line of the comment itself.
    pub line: u32,
    /// Last source line the sanction covers: the end of the consecutive
    /// comment block it belongs to (a rationale may wrap onto following
    /// comment lines) plus the next code line.
    pub end_line: u32,
    /// Whether the `allow(…)` list itself parsed.
    pub parsed: bool,
}

/// Everything a rule needs to know about one file.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes, e.g.
    /// `crates/proto/src/wire.rs`.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Lines covered by `#[cfg(test)]` items (`mod tests { … }` bodies
    /// and test fns), 1-based inclusive.
    test_lines: BTreeSet<u32>,
    /// line → token index range (first index with that line, one past
    /// last). Tokens are line-sorted by construction.
    line_index: BTreeMap<u32, (usize, usize)>,
    /// Parsed sanctions, by the first code line they cover.
    pub sanctions: Vec<Sanction>,
}

impl FileCtx {
    pub fn new(rel_path: &str, src: &str) -> Self {
        let Lexed { tokens, comments } = lex(src);
        let test_lines = cfg_test_lines(&tokens);
        let mut line_index: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
        for (i, t) in tokens.iter().enumerate() {
            let e = line_index.entry(t.line).or_insert((i, i));
            e.1 = i + 1;
        }
        // Coalesce consecutive comment lines into blocks so a sanction
        // whose rationale wraps onto following comment lines still
        // covers the code line after the block.
        let mut block_ends = vec![0u32; comments.len()];
        {
            let mut i = 0;
            while i < comments.len() {
                let mut end = comments[i].end_line;
                let mut j = i + 1;
                while j < comments.len() && comments[j].line <= end + 1 {
                    end = end.max(comments[j].end_line);
                    j += 1;
                }
                for be in &mut block_ends[i..j] {
                    *be = end;
                }
                i = j;
            }
        }
        let sanctions = comments
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let mut s = parse_sanction(c)?;
                s.end_line = block_ends[i] + 1;
                Some(s)
            })
            .collect();
        Self {
            rel_path: rel_path.replace('\\', "/"),
            tokens,
            comments,
            test_lines,
            line_index,
            sanctions,
        }
    }

    /// Is this 1-based line inside a `#[cfg(test)]` item?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Is `rule` sanctioned for code on `line`? A sanction covers the
    /// line of its own comment (trailing form) and the next line
    /// (preceding-line form). Bare or malformed sanctions cover
    /// nothing — they are themselves violations (`bare-allow`).
    pub fn sanctioned(&self, rule: &str, line: u32) -> bool {
        self.sanctions.iter().any(|s| {
            s.parsed
                && s.has_rationale
                && s.line <= line
                && line <= s.end_line
                && s.rules.iter().any(|r| r == rule)
        })
    }

    /// Any token on `line` whose text is exactly `text`?
    pub fn line_has_ident(&self, line: u32, text: &str) -> bool {
        self.tokens_on(line).iter().any(|t| t.text == text)
    }

    /// Tokens on one line (empty slice if none).
    pub fn tokens_on(&self, line: u32) -> &[Token] {
        match self.line_index.get(&line) {
            Some(&(a, b)) => &self.tokens[a..b],
            None => &[],
        }
    }

    /// Any identifier from `names` on a line in `[line-before, line+after]`?
    pub fn nearby_ident(&self, line: u32, before: u32, after: u32, names: &[&str]) -> bool {
        let lo = line.saturating_sub(before);
        let hi = line + after;
        self.line_index.range(lo..=hi).any(|(_, &(a, b))| {
            self.tokens[a..b]
                .iter()
                .any(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
        })
    }

    /// Is there a comment *block* containing any of `needles` that ends
    /// on `line` or within `within` lines above it? Comments on
    /// consecutive lines (a `///` doc block, a run of `//` lines)
    /// coalesce into one block, so a marker anywhere in the block
    /// counts as long as the block reaches the window.
    pub fn comment_above(&self, line: u32, within: u32, needles: &[&str]) -> bool {
        let lo = line.saturating_sub(within);
        let mut i = 0;
        while i < self.comments.len() {
            // Grow the block while comments sit on consecutive lines.
            let mut end = self.comments[i].end_line;
            let mut hit = needles.iter().any(|n| self.comments[i].text.contains(n));
            let mut j = i + 1;
            while j < self.comments.len() && self.comments[j].line <= end + 1 {
                end = self.comments[j].end_line.max(end);
                hit |= needles.iter().any(|n| self.comments[j].text.contains(n));
                j += 1;
            }
            if hit && end >= lo && end <= line {
                return true;
            }
            i = j;
        }
        false
    }
}

/// Parse a comment as a sanction. Returns `None` for ordinary comments;
/// `Some` (possibly malformed — see [`Sanction::parsed`] /
/// [`Sanction::has_rationale`]) for anything that starts with the
/// `lint:` marker after stripping doc-comment furniture.
fn parse_sanction(c: &Comment) -> Option<Sanction> {
    let mut text = c.text.trim();
    // Strip doc-comment introducers (`/` from `///`, `!` from `//!`) and
    // nested `//` so sanctions inside doc examples still parse.
    loop {
        let t = text.trim_start_matches(['/', '!']).trim_start();
        if t == text {
            break;
        }
        text = t;
    }
    let rest = text.strip_prefix(SANCTION_PREFIX)?.trim_start();
    let mut out = Sanction {
        rules: Vec::new(),
        has_rationale: false,
        line: c.line,
        end_line: c.end_line + 1,
        parsed: false,
    };
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(out);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(out);
    };
    let Some(close) = rest.find(')') else {
        return Some(out);
    };
    let list = &rest[..close];
    out.rules = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    out.parsed = !out.rules.is_empty();
    // Rationale: whatever follows the close paren, minus separator
    // punctuation (`—`, `-`, `:`). Must contain a word character.
    let after = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' ']);
    out.has_rationale = after.chars().any(|ch| ch.is_alphanumeric());
    Some(out)
}

/// Compute the set of lines covered by `#[cfg(test)]` items: the
/// attribute may sit on a `mod` (the common `mod tests` shape) or
/// directly on an `fn`/`impl`. Lines from the item's opening `{` to its
/// matching `}` are excluded from serving-path rules.
fn cfg_test_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the body: first `{` at or after the item keyword,
            // then its matching close brace. A `#[cfg(test)] mod x;`
            // (out-of-line test module) has no body here; the file walk
            // handles those files by name.
            let mut j = i;
            let mut open = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokKind::Punct && t.text == "{" {
                    open = Some(j);
                    break;
                }
                if t.kind == TokKind::Punct && t.text == ";" {
                    break;
                }
                j += 1;
            }
            if let Some(o) = open {
                let mut depth = 0i64;
                let mut k = o;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if t.kind == TokKind::Punct {
                        if t.text == "{" {
                            depth += 1;
                        } else if t.text == "}" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    k += 1;
                }
                let start = tokens[o].line;
                let end = tokens[k.min(tokens.len() - 1)].line;
                for l in start..=end {
                    out.insert(l);
                }
                i = k.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Does a `#[cfg(test)]` / `#[cfg(all(test, …))]`-style attribute start
/// at token `i`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let txt = |k: usize| tokens.get(k).map(|t| t.text.as_str()).unwrap_or("");
    if txt(i) != "#" || txt(i + 1) != "[" || txt(i + 2) != "cfg" || txt(i + 3) != "(" {
        return false;
    }
    // Scan the attribute's token run (to the matching `]`) for the bare
    // ident `test`.
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        } else if t.kind == TokKind::Ident && t.text == "test" {
            return true;
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src = "fn serving() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_serving() {}\n";
        let ctx = FileCtx::new("crates/rpc/src/x.rs", src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(4));
        assert!(!ctx.in_test(6));
    }

    #[test]
    fn sanction_parsing() {
        let good = "lint: allow(unmetered-copy) — header bytes only";
        let bare = "lint: allow(unmetered-copy)";
        let multi = "lint: allow(unmetered-copy, truncating-cast): both fine here";
        let ctx = FileCtx::new(
            "x.rs",
            &format!("// {good}\nlet a = 1;\n// {bare}\nlet b = 2;\n// {multi}\nlet c = 3;\n"),
        );
        assert!(ctx.sanctioned("unmetered-copy", 2));
        assert!(
            !ctx.sanctioned("unmetered-copy", 4),
            "bare allow must not sanction"
        );
        assert!(ctx.sanctioned("truncating-cast", 6));
        assert!(ctx.sanctioned("unmetered-copy", 6));
        assert!(!ctx.sanctioned("unmetered-copy", 3));
    }

    #[test]
    fn wrapped_rationale_still_covers_next_code_line() {
        let src = "// lint: allow(unmetered-lock) — a rationale long enough\n// that it wraps onto a second comment line\nlet g = m.lock();\n";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.sanctioned("unmetered-lock", 3));
        assert!(!ctx.sanctioned("unmetered-lock", 4));
    }

    #[test]
    fn trailing_sanction_covers_its_own_line() {
        let ctx = FileCtx::new(
            "x.rs",
            "let v = s.to_vec(); // lint: allow(unmetered-copy) — test scaffolding\n",
        );
        assert!(ctx.sanctioned("unmetered-copy", 1));
    }
}
