//! `blobseer-lint` — the workspace invariant linter.
//!
//! The repo's discipline — zero-copy data path, lock-free control
//! plane, typed errors, measured ablations — is *measured* by
//! `copymeter`/`lockmeter` and asserted by benches and tier-1 tests.
//! Measurement only covers exercised paths: an unmetered `Mutex` on a
//! branch the benches never hit, a silent `to_vec()` in cold code, or
//! an `as u32` length wrap ships undetected until a workload finds it.
//! This crate is the *static* leg of enforcement: a dependency-free,
//! offline pass over every Rust source in the workspace that checks
//! every path on every PR, gated in CI (`invariant-lint` job).
//!
//! # Usage
//!
//! ```text
//! cargo run -p blobseer-lint -- --workspace          # lint the whole tree
//! cargo run -p blobseer-lint -- --root DIR [PATHS…]  # lint a subtree
//! cargo run -p blobseer-lint -- --rule truncating-cast --workspace
//! cargo run -p blobseer-lint -- --list-rules
//! ```
//!
//! Exit status: `0` clean, `1` violations found, `2` usage/IO error.
//!
//! # Sanctions
//!
//! A violation that is deliberate carries a sanction on the preceding
//! line (or trailing on the same line), with a **mandatory** rationale:
//!
//! ```text
//! // lint: allow(unmetered-copy) — record header words, not payload
//! buf.extend_from_slice(&header);
//! ```
//!
//! Multiple rules may be listed (`allow(rule-a, rule-b) — why`). A
//! sanction without a rationale, or naming a rule this linter does not
//! know, is itself reported under the `bare-allow` rule.
//!
//! # Rule catalog
//!
//! See [`rules`] for the per-rule documentation with motivating
//! examples, and `ROADMAP.md` ("Static invariant enforcement") for how
//! the rules map onto the written invariants.
//!
//! # Design
//!
//! No `syn`, no rustc internals: a hand-rolled lexer ([`lexer`]) that
//! is comment/string/raw-string aware feeds token-shape rules
//! ([`rules`]) over a per-file context ([`context`]) that tracks
//! `#[cfg(test)]` spans and the sanction table. Lexical analysis is
//! deliberately conservative: where it cannot see types (is this
//! `.to_vec()` on a `ByteChain` or a `Vec<PathBuf>`?) the sanction
//! mechanism turns each judgment call into one greppable, justified
//! line of documentation at the site.

#![deny(unsafe_code)]

pub mod context;
pub mod lexer;
pub mod rules;

use context::FileCtx;
use rules::Violation;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories the workspace walk never descends into. `fixtures`
/// holds this crate's own deliberately-violating test inputs.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".bench-baselines"];

/// Collect every `.rs` file under `root`, workspace-relative, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint one source text under its workspace-relative path.
pub fn lint_source(rel_path: &str, src: &str, only: Option<&[String]>) -> Vec<Violation> {
    let ctx = FileCtx::new(rel_path, src);
    let mut out = Vec::new();
    rules::check_file(&ctx, only, &mut out);
    out
}

/// Lint every `.rs` file under `root` (or just `paths`, if non-empty;
/// each entry may be a file or a directory, absolute or root-relative).
/// Rule scoping is computed from paths relative to `root`, so `root`
/// must be the workspace root for the scoped rules to engage.
pub fn lint_root(
    root: &Path,
    paths: &[PathBuf],
    only: Option<&[String]>,
) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    if paths.is_empty() {
        files = workspace_files(root)?;
    } else {
        for p in paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if abs.is_dir() {
                files.extend(workspace_files(&abs)?);
            } else {
                files.push(abs);
            }
        }
        files.sort();
    }
    let mut out = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(f)?;
        out.extend(lint_source(&rel, &src, only));
    }
    out.sort_by(|a, b| (&a.rel_path, a.line).cmp(&(&b.rel_path, b.line)));
    Ok(out)
}

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
