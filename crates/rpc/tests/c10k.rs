//! C10K acceptance: ten thousand concurrent established connections
//! served by a **fixed** number of threads.
//!
//! The thread-per-connection regime would need ten thousand stacks for
//! this load; the reactor serves it from `event_loops + dispatch_threads`
//! threads, period. The client swarm runs in a re-executed child process
//! (this test binary, filtered to [`c10k_client_swarm`]) so the parent's
//! fd budget is spent only on the server side of each connection.
//!
//! Linux-only: the assertion reads `/proc/self/status`, and the reactor
//! regime itself is the unix build.

#![cfg(target_os = "linux")]

use blobseer_rpc::{Frame, ServerMode, TcpOptions, TcpTransport, Transport};
use blobseer_util::fdlimit;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Echo;
impl blobseer_rpc::Service for Echo {
    fn handle(&self, _ctx: &mut blobseer_rpc::ServerCtx, frame: &Frame) -> Frame {
        blobseer_rpc::respond(frame, |x: u64| Ok(x))
    }
}

/// Current thread count of this process, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Child entry point: dial the address in `BLOBSEER_C10K_ADDR` the
/// requested number of times, hold every connection idle, report READY
/// on stdout, and keep holding until stdin reaches EOF. A no-op in the
/// normal test run (the env var is unset).
#[test]
fn c10k_client_swarm() {
    let Ok(addr) = std::env::var("BLOBSEER_C10K_ADDR") else {
        return;
    };
    let want: usize = std::env::var("BLOBSEER_C10K_CONNS")
        .expect("conn count")
        .parse()
        .expect("numeric conn count");
    let _ = fdlimit::raise_soft_to_hard();
    let mut held: Vec<TcpStream> = Vec::with_capacity(want);
    let deadline = Instant::now() + Duration::from_secs(120);
    while held.len() < want {
        match TcpStream::connect(&addr) {
            Ok(s) => held.push(s),
            Err(e) => {
                // Transient listen-backlog overflow: let the server
                // drain its accept queue and retry.
                assert!(
                    Instant::now() < deadline,
                    "swarm stalled at {} conns: {e}",
                    held.len()
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    println!("READY {}", held.len());
    // Hold every connection until the parent closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(held);
}

#[test]
fn ten_thousand_connections_on_a_fixed_thread_count() {
    let hard = fdlimit::raise_soft_to_hard().expect("raise fd limit");
    // The parent holds only the server side of every connection (the
    // swarm child owns the client side under its own fd budget); leave
    // headroom for the harness's own fds.
    let conns: usize = std::cmp::min(10_000, (hard as usize).saturating_sub(2_000));
    assert!(
        conns >= 1_000,
        "fd hard limit {hard} too small to exercise connection scaling"
    );

    let t = Arc::new(TcpTransport::with_options(TcpOptions {
        server_mode: ServerMode::Reactor,
        ..TcpOptions::default()
    }));
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    assert_eq!(t.server_mode(), ServerMode::Reactor);
    let addr = t.addr(server).unwrap();

    // Warm the client path (mux connection + its reader thread), then
    // let the harness's sibling-test threads wind down before the
    // thread-count baseline.
    let (resp, _) = t
        .call(client, server, 0, Frame::from_msg(1, &1u64))
        .unwrap();
    let x: u64 = blobseer_rpc::parse_response(&resp).unwrap();
    assert_eq!(x, 1);
    std::thread::sleep(Duration::from_millis(200));
    let baseline = thread_count();

    let exe = std::env::current_exe().expect("own test binary");
    let mut child = std::process::Command::new(exe)
        .args([
            "c10k_client_swarm",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("BLOBSEER_C10K_ADDR", addr.to_string())
        .env("BLOBSEER_C10K_CONNS", conns.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn client swarm");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    loop {
        line.clear();
        let n = child_out.read_line(&mut line).expect("child stdout line");
        assert!(n > 0, "swarm exited before READY");
        // The harness prints "test c10k_client_swarm ... " on the same
        // line, so match anywhere in it.
        if line.contains("READY") {
            break;
        }
    }

    // Every swarm connection must be *established server-side* (the
    // gauge counts installed connections, not SYN backlog).
    let deadline = Instant::now() + Duration::from_secs(60);
    while t.active_connections() < conns {
        assert!(
            Instant::now() < deadline,
            "only {}/{conns} connections installed",
            t.active_connections()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The load is ten thousand connections; the thread count is the
    // same fixed handful it was at one connection.
    let under_load = thread_count();
    assert_eq!(
        under_load, baseline,
        "thread count must not scale with connections \
         ({baseline} threads before, {under_load} at {conns} connections)"
    );

    // And the server still *serves* under that load.
    let start = Instant::now();
    let (resp, _) = t
        .call(client, server, 0, Frame::from_msg(1, &99u64))
        .unwrap();
    let x: u64 = blobseer_rpc::parse_response(&resp).unwrap();
    assert_eq!(x, 99);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "a call under C10K load must not crawl"
    );

    // Release the swarm.
    if let Some(stdin) = child.stdin.take() {
        let mut stdin = stdin;
        let _ = stdin.write_all(b"done\n");
        drop(stdin);
    }
    let status = child.wait().expect("reap swarm");
    assert!(status.success(), "swarm child failed: {status}");
}
