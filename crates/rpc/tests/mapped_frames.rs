//! Mapped buffers through the RPC framing path: a page served out of a
//! provider's log mapping must ride frames exactly like a heap page —
//! attached as a shared segment on encode (so the socket gather-writes
//! straight out of the page cache), preserved by batching, and lent by
//! refcount on decode. No layer may flatten or copy it.

use blobseer_proto::messages::{method, PutPage};
use blobseer_proto::tree::PageKey;
use blobseer_proto::wire::Wire;
use blobseer_proto::{BlobId, PageBuf, WriteId};
use blobseer_rpc::Frame;
use blobseer_util::copymeter;

const PAGE: usize = 4096; // ≥ SHARE_THRESHOLD: rides as a shared segment

fn mapped_page() -> (PageBuf, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "blobseer-rpc-mapped-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let bytes: Vec<u8> = (0..PAGE).map(|i| (i % 249) as u8).collect();
    std::fs::write(&path, &bytes).unwrap();
    let file = std::fs::File::open(&path).unwrap();
    let buf = PageBuf::map_file(&file).unwrap();
    assert!(buf.is_mapped());
    (buf, path)
}

fn key() -> PageKey {
    PageKey {
        blob: BlobId(7),
        write: WriteId(3),
        index: 1,
    }
}

#[test]
fn mapped_payloads_share_through_framing_and_batching() {
    let (page, path) = mapped_page();
    let msg = PutPage {
        key: key(),
        data: page.clone(),
    };

    let before = copymeter::thread_snapshot();
    let frame = Frame::from_msg(method::PUT_PAGE, &msg);
    assert_eq!(
        before.bytes_since(),
        0,
        "framing a mapped page copies nothing"
    );
    assert!(
        frame
            .body
            .segments()
            .iter()
            .any(|s| s.same_allocation(&page)),
        "the mapped page rides the frame as a shared segment"
    );

    // Batching (replica fan-out aggregation) keeps the sharing.
    let other = Frame::from_msg(method::GET_PAGE, &key());
    let before = copymeter::thread_snapshot();
    let batch = Frame::batch(vec![frame.clone(), other]).unwrap();
    assert_eq!(before.bytes_since(), 0, "batching copies nothing");
    assert!(
        batch
            .body
            .segments()
            .iter()
            .any(|s| s.same_allocation(&page)),
        "batched frames still share the mapped allocation"
    );

    // The gather-write slice list points straight into the mapping —
    // this is what `write_vectored` hands the kernel.
    let prefix = [0u8; 18];
    let slices = batch.body.as_io_slices(&prefix);
    let mapped_ptr = page.as_slice().as_ptr();
    assert!(
        slices.iter().any(|s| std::ptr::eq(s.as_ptr(), mapped_ptr)),
        "one iovec points directly at the mapped bytes"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn decode_lends_regardless_of_sender_backing() {
    let (page, path) = mapped_page();
    let frame = Frame::from_msg(
        method::PUT_PAGE,
        &PutPage {
            key: key(),
            data: page.clone(),
        },
    );

    // Model the receive side: the wire bytes land in one contiguous
    // receive buffer (this flatten is test scaffolding for the kernel's
    // copy, outside the assert window), then decode lends from it.
    let wire = frame.to_chain().to_vec();
    let rx = PageBuf::from_vec(wire);

    let before = copymeter::thread_snapshot();
    let mut r = blobseer_proto::wire::Reader::from_buf(&rx);
    let decoded = Frame::decode(&mut r).unwrap();
    let msg: PutPage = decoded.parse().unwrap();
    assert_eq!(before.bytes_since(), 0, "decode lends, never copies");
    assert_eq!(msg.data, page, "byte-identical across the wire");
    assert!(
        msg.data.same_allocation(&rx),
        "the received payload is a refcounted slice of the receive buffer"
    );

    let _ = std::fs::remove_file(&path);
}
