//! Property tests: frames and aggregated batch frames carrying payload
//! buffers round-trip through both the chain (in-process) and flat
//! (socket) representations, with payload sharing preserved on the
//! chain path.

use blobseer_proto::wire::{ByteChain, Wire, SHARE_THRESHOLD};
use blobseer_proto::PageBuf;
use blobseer_rpc::Frame;
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = PageBuf> {
    proptest::collection::vec(any::<u8>(), 0..4096).prop_map(PageBuf::from_vec)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (any::<u16>(), arb_payload()).prop_map(|(method, data)| Frame::from_msg(method, &data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frames_roundtrip_flat_and_chained(frame in arb_frame()) {
        // Socket path: flatten to contiguous bytes and decode.
        let flat = frame.to_wire();
        prop_assert_eq!(Frame::from_wire(&flat).unwrap(), frame.clone());
        // In-process path: decode from the chain.
        prop_assert_eq!(Frame::from_chain(&frame.to_chain()).unwrap(), frame);
    }

    #[test]
    fn batches_roundtrip_with_shared_payloads(
        payloads in proptest::collection::vec(arb_payload(), 0..12),
    ) {
        let frames: Vec<Frame> =
            payloads.iter().map(|p| Frame::from_msg(0x0101, p)).collect();
        let batch = Frame::batch(frames.clone()).unwrap();

        // Unbatching the in-process representation returns equal frames,
        // and large payloads come back sharing the original allocations.
        let unpacked = batch.unbatch().unwrap().unwrap();
        prop_assert_eq!(unpacked.len(), frames.len());
        for (orig, (got, payload)) in
            frames.iter().zip(unpacked.iter().zip(&payloads))
        {
            prop_assert_eq!(got, orig);
            let back: PageBuf = got.parse().unwrap();
            prop_assert_eq!(&back, payload);
            if payload.len() >= SHARE_THRESHOLD {
                prop_assert!(
                    back.same_allocation(payload),
                    "batched payload must be lent by refcount"
                );
            }
        }

        // The flattened batch (what a socket would carry) decodes to the
        // same frames.
        let flat = batch.to_wire();
        prop_assert_eq!(flat.len(), batch.wire_size());
        let reparsed = Frame::from_wire(&flat).unwrap();
        let unpacked2 = reparsed.unbatch().unwrap().unwrap();
        prop_assert_eq!(unpacked2, frames);
    }

    #[test]
    fn truncated_batches_fail_cleanly(
        payloads in proptest::collection::vec(arb_payload(), 1..6),
        cut in 1usize..64,
    ) {
        let frames: Vec<Frame> =
            payloads.iter().map(|p| Frame::from_msg(7, p)).collect();
        let mut flat = Frame::batch(frames).unwrap().to_wire();
        let cut = cut.min(flat.len() - 1);
        flat.truncate(flat.len() - cut);
        prop_assert!(Frame::from_wire(&flat).is_err());
    }

    #[test]
    fn nested_batches_roundtrip(
        inner_payload in arb_payload(),
        n_inner in 1usize..4,
    ) {
        // Batches of batches (a relay aggregating already-aggregated
        // traffic) keep working; sharing survives one more level.
        let leaf = Frame::from_msg(1, &inner_payload);
        let inner = Frame::batch(vec![leaf; n_inner]).unwrap();
        let outer = Frame::batch(vec![inner.clone(), inner.clone()]).unwrap();
        let unpacked = outer.unbatch().unwrap().unwrap();
        prop_assert_eq!(unpacked.len(), 2);
        let inner_back = unpacked[0].unbatch().unwrap().unwrap();
        prop_assert_eq!(inner_back.len(), n_inner);
        let payload_back: PageBuf = inner_back[0].parse().unwrap();
        prop_assert_eq!(&payload_back, &inner_payload);
        if inner_payload.len() >= SHARE_THRESHOLD {
            prop_assert!(payload_back.same_allocation(&inner_payload));
        }
    }

    #[test]
    fn truncated_socket_bytes_never_panic(
        payloads in proptest::collection::vec(arb_payload(), 0..6),
        keep in 0usize..8192,
    ) {
        // The socket receive path: bytes arrive in one PageBuf and are
        // decoded via Reader::from_buf. Every possible truncation point
        // must produce Err, never a panic-slice or an over-allocation.
        let frames: Vec<Frame> =
            payloads.iter().map(|p| Frame::from_msg(3, p)).collect();
        let flat = Frame::batch(frames).unwrap().to_wire();
        let keep = keep.min(flat.len().saturating_sub(1));
        let buf = PageBuf::from_vec(flat[..keep].to_vec());
        prop_assert!(Frame::from_buf(&buf).is_err());
    }

    #[test]
    fn bit_flipped_socket_bytes_never_panic(
        payloads in proptest::collection::vec(arb_payload(), 1..6),
        flips in proptest::collection::vec((0usize..8192, 0u8..8), 1..8),
    ) {
        // Corrupt-but-complete frames: flip bits anywhere (including
        // inside length prefixes). Decode may fail or may yield a
        // different but valid frame — it must never panic and never
        // read out of bounds.
        let frames: Vec<Frame> =
            payloads.iter().map(|p| Frame::from_msg(5, p)).collect();
        let mut flat = Frame::batch(frames).unwrap().to_wire();
        for (pos, bit) in flips {
            let pos = pos % flat.len();
            flat[pos] ^= 1 << bit;
        }
        let buf = PageBuf::from_vec(flat);
        if let Ok(frame) = Frame::from_buf(&buf) {
            // Whatever decoded must also survive its own unbatch/parse.
            if let Some(Ok(subs)) = frame.unbatch() {
                for s in subs {
                    let _ = s.parse::<PageBuf>();
                }
            }
        }
    }

    #[test]
    fn subchain_equals_flat_slicing(
        bytes in proptest::collection::vec(any::<u8>(), 1..2048),
        splits in proptest::collection::vec(1usize..2048, 0..4),
        window in (0usize..2048, 0usize..2048),
    ) {
        // A chain assembled from arbitrary splits of a byte string is
        // indistinguishable from the flat string under subchain/to_vec.
        let mut chain = ByteChain::new();
        let mut rest: &[u8] = &bytes;
        for s in splits {
            let cut = s.min(rest.len());
            let (a, b) = rest.split_at(cut);
            chain.push(PageBuf::copy_from_slice(a));
            rest = b;
        }
        chain.push(PageBuf::copy_from_slice(rest));
        prop_assert_eq!(chain.len(), bytes.len());
        prop_assert_eq!(chain.to_vec(), bytes.clone());
        let start = window.0.min(bytes.len());
        let len = window.1.min(bytes.len() - start);
        prop_assert_eq!(chain.subchain(start, len).to_vec(), bytes[start..start + len].to_vec());
    }
}
