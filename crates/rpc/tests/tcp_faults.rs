//! Transport fault injection for [`TcpTransport`]: every failure mode a
//! real peer can inflict — connect refused, close mid-frame, reset under
//! a large write, accept-then-silence, hostile length prefixes — must
//! surface as a clean `TransportResult` error with no hang and no leaked
//! pooled connection. The provider-death paths simnet already exercises
//! (kill/revive) ride on the same machinery and are covered in
//! `crates/rpc/src/tcp.rs` and the core `tcp_e2e` suite.

use blobseer_proto::{BlobError, PageBuf};
use blobseer_rpc::{Ctx, Frame, RpcClient, TcpOptions, TcpTransport, Transport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// A transport with short timeouts so fault paths resolve in test time.
fn transport() -> Arc<TcpTransport> {
    Arc::new(TcpTransport::with_options(TcpOptions {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_millis(500)),
        max_pooled_per_peer: 8,
    }))
}

/// Bind a loopback port, return its address, and close the listener so
/// connects are refused.
fn refused_addr() -> SocketAddr {
    let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    l.local_addr().unwrap()
}

/// Spawn a misbehaving peer; `evil` receives each accepted connection.
fn evil_peer(
    evil: impl Fn(std::net::TcpStream) + Send + 'static,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = l.local_addr().unwrap();
    let h = std::thread::spawn(move || {
        if let Ok((s, _)) = l.accept() {
            evil(s);
        }
    });
    (addr, h)
}

#[test]
fn connect_refused_is_a_clean_error() {
    let t = transport();
    let c = t.add_node();
    let dead = t.register_remote(refused_addr());
    let err = t.call(c, dead, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert_eq!(t.pooled_connections(dead), 0);
}

#[test]
fn peer_closing_mid_response_is_a_clean_error() {
    // The peer reads the whole request, then sends a response envelope
    // that promises more bytes than it delivers and closes.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        let mut partial = Vec::new();
        partial.extend_from_slice(&100u32.to_le_bytes()); // promises 100
        partial.extend_from_slice(&[7u8; 10]); // delivers 10
        let _ = s.write_all(&partial);
        // drop: close mid-frame
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert_eq!(
        t.pooled_connections(peer),
        0,
        "a half-dead connection must not be pooled"
    );
    h.join().unwrap();
}

#[test]
fn peer_resetting_under_a_large_write_is_a_clean_error() {
    // The peer reads a few bytes and drops the socket with unread data
    // queued — the kernel turns the client's in-flight gather write into
    // EPIPE/ECONNRESET partway through.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 16];
        let _ = s.read_exact(&mut sink);
        // drop with megabytes still inbound → RST
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    // A body far beyond socket buffers guarantees the write is split.
    let big = PageBuf::from_vec(vec![0x5A; 16 << 20]);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &big)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert_eq!(t.pooled_connections(peer), 0);
    h.join().unwrap();
}

#[test]
fn silent_peer_times_out_instead_of_hanging() {
    // The peer accepts, reads the request, and never answers. The
    // configured io timeout must bound the call.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        std::thread::sleep(Duration::from_secs(2));
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let start = std::time::Instant::now();
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "the io timeout must fire well before the peer wakes"
    );
    assert_eq!(t.pooled_connections(peer), 0);
    h.join().unwrap();
}

#[test]
fn hostile_response_length_prefix_is_codec_error_not_allocation() {
    // The peer answers with a 4 GiB envelope length. The client must
    // reject it before allocating, as a typed codec error.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        let _ = s.write_all(&u32::MAX.to_le_bytes());
        let _ = s.write_all(&[0u8; 64]);
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Codec(_)), "{err:?}");
    assert_eq!(t.pooled_connections(peer), 0);
    h.join().unwrap();
}

#[test]
fn garbage_response_bytes_are_codec_error() {
    // A well-sized envelope whose contents don't decode as a frame.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        // Envelope: len=20 (fixed 14 + 6 body), then 20 bytes where the
        // frame's body-length prefix claims more than remains.
        let mut resp = Vec::new();
        resp.extend_from_slice(&20u32.to_le_bytes());
        resp.extend_from_slice(&0u64.to_le_bytes()); // vt
        resp.extend_from_slice(&1u16.to_le_bytes()); // method
        resp.extend_from_slice(&1000u32.to_le_bytes()); // lies: body_len
        resp.extend_from_slice(&[0u8; 6]);
        let _ = s.write_all(&resp);
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Codec(_)), "{err:?}");
    h.join().unwrap();
}

#[test]
fn stalled_client_is_timed_out_by_the_server_but_idle_pools_survive() {
    use blobseer_rpc::{respond, ServerCtx, Service};
    struct Echo;
    impl Service for Echo {
        fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            respond(frame, |x: u64| Ok(x))
        }
    }
    let t = transport(); // io timeout: 500 ms, applied server-side too
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    // A client that sends two bytes of envelope and stalls must be
    // closed by the worker's io timeout, not parked forever.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(&[1, 2]).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 8];
    let start = std::time::Instant::now();
    let n = s.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server must close a mid-frame staller");
    assert!(start.elapsed() < Duration::from_secs(3));

    // But an *idle* pooled connection (timeout at a frame boundary)
    // stays open: a call after more than one io-timeout still reuses it.
    let rpc = RpcClient::new(Arc::clone(&t) as _, client);
    let mut ctx = Ctx::start();
    let _: u64 = rpc.call(&mut ctx, server, 1, &7u64).unwrap();
    assert_eq!(t.pooled_connections(server), 1);
    std::thread::sleep(Duration::from_millis(1200));
    let r: u64 = rpc.call(&mut ctx, server, 1, &8u64).unwrap();
    assert_eq!(r, 8);
    assert_eq!(
        t.pooled_connections(server),
        1,
        "idle pooled connections must outlive the io timeout"
    );
}

#[test]
fn server_survives_corrupt_and_half_open_clients() {
    // The *server* side of the same coin: a client that sends garbage or
    // disconnects mid-frame must only cost its own connection; the
    // service keeps serving well-behaved callers.
    use blobseer_rpc::{respond, ServerCtx, Service};
    struct Echo;
    impl Service for Echo {
        fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            respond(frame, |x: u64| Ok(x))
        }
    }
    let t = transport();
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    // Garbage envelope length.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.write_all(&[0xFF; 32]).unwrap();
    drop(s);
    // Half a frame, then disconnect.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[1u8; 20]).unwrap();
    drop(s);

    let rpc = RpcClient::new(Arc::clone(&t) as _, client);
    let mut ctx = Ctx::start();
    for i in 0..5u64 {
        let r: u64 = rpc.call(&mut ctx, server, 1, &i).unwrap();
        assert_eq!(r, i, "service must keep serving after hostile clients");
    }
}
