//! Transport fault injection for [`TcpTransport`]: every failure mode a
//! real peer can inflict — connect refused, close mid-frame, reset under
//! a large write, accept-then-silence, hostile length prefixes, byte-at-
//! a-time slow-loris trickles, stray correlation ids, overload shedding
//! — must surface as a clean `TransportResult` error with no hang and no
//! leaked pooled connection, in **both** server regimes (the event-driven
//! reactor and the thread-per-connection ablation). The provider-death
//! paths simnet already exercises (kill/revive) ride on the same
//! machinery and are covered in `crates/rpc/src/tcp.rs` and the core
//! `tcp_e2e` suite.

use blobseer_proto::{BlobError, PageBuf};
use blobseer_rpc::{
    encode_wire_frame, read_wire_frame, Ctx, Frame, RpcClient, ServerMode, TcpOptions,
    TcpTransport, Transport, CTRL_CORR, CTRL_SHED,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A transport with short timeouts so fault paths resolve in test time.
fn transport() -> Arc<TcpTransport> {
    transport_in(ServerMode::Reactor)
}

fn transport_in(mode: ServerMode) -> Arc<TcpTransport> {
    Arc::new(TcpTransport::with_options(TcpOptions {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_millis(500)),
        max_pooled_per_peer: 8,
        server_mode: mode,
        ..TcpOptions::default()
    }))
}

/// Bind a loopback port, return its address, and close the listener so
/// connects are refused.
fn refused_addr() -> SocketAddr {
    let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    l.local_addr().unwrap()
}

/// Spawn a misbehaving peer; `evil` receives each accepted connection.
fn evil_peer(
    evil: impl Fn(std::net::TcpStream) + Send + 'static,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = l.local_addr().unwrap();
    let h = std::thread::spawn(move || {
        if let Ok((s, _)) = l.accept() {
            evil(s);
        }
    });
    (addr, h)
}

/// An echo service used by the server-side fault tests.
struct Echo;
impl blobseer_rpc::Service for Echo {
    fn handle(&self, _ctx: &mut blobseer_rpc::ServerCtx, frame: &Frame) -> Frame {
        blobseer_rpc::respond(frame, |x: u64| Ok(x))
    }
}

#[test]
fn connect_refused_is_a_clean_error() {
    let t = transport();
    let c = t.add_node();
    let dead = t.register_remote(refused_addr());
    let err = t.call(c, dead, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert_eq!(t.pooled_connections(dead), 0);
}

#[test]
fn peer_closing_mid_response_is_a_clean_error() {
    // The peer reads the whole request, then sends a response envelope
    // that promises more bytes than it delivers and closes.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        let mut partial = Vec::new();
        partial.extend_from_slice(&100u32.to_le_bytes()); // promises 100
        partial.extend_from_slice(&[7u8; 10]); // delivers 10
        let _ = s.write_all(&partial);
        // drop: close mid-frame
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert_eq!(
        t.pooled_connections(peer),
        0,
        "a half-dead connection must not be pooled"
    );
    h.join().unwrap();
}

#[test]
fn peer_resetting_under_a_large_write_is_a_clean_error() {
    // The peer reads a few bytes and drops the socket with unread data
    // queued — the kernel turns the client's in-flight gather write into
    // EPIPE/ECONNRESET partway through.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 16];
        let _ = s.read_exact(&mut sink);
        // drop with megabytes still inbound → RST
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    // A body far beyond socket buffers guarantees the write is split.
    let big = PageBuf::from_vec(vec![0x5A; 16 << 20]);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &big)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert_eq!(t.pooled_connections(peer), 0);
    h.join().unwrap();
}

#[test]
fn silent_peer_times_out_instead_of_hanging() {
    // The peer accepts, reads the request, and never answers. The
    // configured io timeout must bound the call.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        std::thread::sleep(Duration::from_secs(2));
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let start = Instant::now();
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Unreachable(_)), "{err:?}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "the io timeout must fire well before the peer wakes"
    );
    assert_eq!(t.pooled_connections(peer), 0);
    h.join().unwrap();
}

#[test]
fn hostile_response_length_prefix_is_codec_error_not_allocation() {
    // The peer answers with a 4 GiB envelope length. The client must
    // reject it before allocating, as a typed codec error.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        let _ = s.write_all(&u32::MAX.to_le_bytes());
        let _ = s.write_all(&[0u8; 64]);
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Codec(_)), "{err:?}");
    assert_eq!(t.pooled_connections(peer), 0);
    h.join().unwrap();
}

#[test]
fn garbage_response_bytes_are_codec_error() {
    // A well-sized envelope whose contents don't decode as a frame.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        // Envelope v2: len=28 (fixed 22 + 6 body), correlation id 1 (the
        // first call on a fresh connection), then a frame whose
        // body-length prefix claims more than remains.
        let mut resp = Vec::new();
        resp.extend_from_slice(&28u32.to_le_bytes());
        resp.extend_from_slice(&1u64.to_le_bytes()); // corr
        resp.extend_from_slice(&0u64.to_le_bytes()); // vt
        resp.extend_from_slice(&1u16.to_le_bytes()); // method
        resp.extend_from_slice(&1000u32.to_le_bytes()); // lies: body_len
        resp.extend_from_slice(&[0u8; 6]);
        let _ = s.write_all(&resp);
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Codec(_)), "{err:?}");
    h.join().unwrap();
}

#[test]
fn stray_correlation_id_is_codec_error_and_kills_the_connection() {
    // The peer answers with a perfectly well-formed frame — for a call
    // nobody made. Once the correlation stream lies, nothing on the
    // connection can be trusted: typed codec error, connection dropped.
    let (addr, h) = evil_peer(|mut s| {
        let mut sink = [0u8; 4096];
        let _ = s.read(&mut sink);
        let resp = encode_wire_frame(999, 0, &Frame::from_msg(1, &42u64)).unwrap();
        let _ = s.write_all(&resp);
    });
    let t = transport();
    let c = t.add_node();
    let peer = t.register_remote(addr);
    let err = t.call(c, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(matches!(err, BlobError::Codec(_)), "{err:?}");
    assert_eq!(
        t.pooled_connections(peer),
        0,
        "a connection with broken correlation framing must be dropped"
    );
    h.join().unwrap();
}

/// Byte-at-a-time slow loris against both server regimes: a client that
/// trickles a *valid* request one byte at a time must still be served —
/// each byte is activity, so the io timeout never fires — and the
/// response must come back intact.
fn slow_loris_request_is_served(mode: ServerMode) {
    let t = transport_in(mode);
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    let req = encode_wire_frame(5, 0, &Frame::from_msg(1, &7u64)).unwrap();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    for b in &req {
        s.write_all(std::slice::from_ref(b)).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let (corr, _vt, resp) = read_wire_frame(&mut s).unwrap();
    assert_eq!(corr, 5, "response must carry the request's correlation id");
    let x: u64 = blobseer_rpc::parse_response(&resp).unwrap();
    assert_eq!(x, 7);
}

#[cfg(unix)]
#[test]
fn slow_loris_request_is_served_by_the_reactor() {
    slow_loris_request_is_served(ServerMode::Reactor);
}

#[test]
fn slow_loris_request_is_served_by_thread_per_conn() {
    slow_loris_request_is_served(ServerMode::ThreadPerConn);
}

#[test]
fn stalled_client_is_timed_out_by_the_server_but_idle_pools_survive() {
    let t = transport(); // io timeout: 500 ms, applied server-side too
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    // A client that sends two bytes of envelope and stalls must be
    // closed by the server's io timeout, not parked forever.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[1, 2]).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 8];
    let start = Instant::now();
    let n = s.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server must close a mid-frame staller");
    assert!(start.elapsed() < Duration::from_secs(3));

    // But an *idle* pooled connection (timeout at a frame boundary)
    // stays open: a call after more than one io-timeout still reuses it.
    let rpc = RpcClient::new(Arc::clone(&t) as _, client);
    let mut ctx = Ctx::start();
    let _: u64 = rpc.call(&mut ctx, server, 1, &7u64).unwrap();
    assert_eq!(t.pooled_connections(server), 1);
    std::thread::sleep(Duration::from_millis(1200));
    let r: u64 = rpc.call(&mut ctx, server, 1, &8u64).unwrap();
    assert_eq!(r, 8);
    assert_eq!(
        t.pooled_connections(server),
        1,
        "idle pooled connections must outlive the io timeout"
    );
}

#[test]
fn half_readable_frame_then_stall_only_costs_that_connection() {
    // A client delivers the envelope head and half the body, then goes
    // quiet: the server must reap exactly that connection while a
    // well-behaved caller sharing the same server stays serviced.
    let t = transport();
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    let req = encode_wire_frame(1, 0, &Frame::from_msg(1, &9u64)).unwrap();
    let mut staller = TcpStream::connect(addr).unwrap();
    staller.write_all(&req[..req.len() / 2]).unwrap();

    // While the staller is mid-frame, a real call must go through.
    let rpc = RpcClient::new(Arc::clone(&t) as _, client);
    let mut ctx = Ctx::start();
    let r: u64 = rpc.call(&mut ctx, server, 1, &11u64).unwrap();
    assert_eq!(r, 11);

    // The staller is closed by the io timeout (EOF on its next read).
    staller
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 8];
    let n = staller.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server must close a half-frame staller");
}

#[cfg(unix)]
#[test]
fn interleaved_responses_share_one_multiplexed_socket() {
    use blobseer_rpc::{respond, ServerCtx, Service};
    // A service whose latency depends on the request: big values sleep.
    struct SkewEcho;
    impl Service for SkewEcho {
        fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            respond(frame, |x: u64| {
                if x >= 100 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(x)
            })
        }
    }
    // One connection only: both calls MUST multiplex over it, and the
    // reactor + dispatch pool must let the fast response overtake the
    // slow one on the same socket.
    let t = Arc::new(TcpTransport::with_options(TcpOptions {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_secs(5)),
        max_pooled_per_peer: 1,
        ..TcpOptions::default()
    }));
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(SkewEcho));

    let t_slow = Arc::clone(&t);
    let slow = std::thread::spawn(move || {
        let started = Instant::now();
        let (resp, _) = t_slow
            .call(client, server, 0, Frame::from_msg(1, &100u64))
            .unwrap();
        let x: u64 = blobseer_rpc::parse_response(&resp).unwrap();
        (x, started.elapsed())
    });
    // Let the slow call win the race into the socket.
    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    let (resp, _) = t
        .call(client, server, 0, Frame::from_msg(1, &1u64))
        .unwrap();
    let fast_elapsed = started.elapsed();
    let x: u64 = blobseer_rpc::parse_response(&resp).unwrap();
    assert_eq!(x, 1);
    let (slow_x, slow_elapsed) = slow.join().unwrap();
    assert_eq!(slow_x, 100);
    assert_eq!(
        t.pooled_connections(server),
        1,
        "both calls must share the single pooled connection"
    );
    assert!(
        fast_elapsed < Duration::from_millis(300),
        "the fast response must not queue behind the slow handler \
         (took {fast_elapsed:?})"
    );
    assert!(slow_elapsed >= Duration::from_millis(300));
}

#[test]
fn overloaded_server_sheds_newest_connections_with_a_typed_close() {
    // Cap the server at 2 established connections. The shed path is the
    // same one the EMFILE accept branch takes: accept, write a CTRL_SHED
    // control frame, close — never silence, never a sleep-loop.
    let t = Arc::new(TcpTransport::with_options(TcpOptions {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_millis(500)),
        max_connections: 2,
        ..TcpOptions::default()
    }));
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    // Fill the cap with idle raw connections and give the server time to
    // install them.
    let _held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let deadline = Instant::now() + Duration::from_secs(2);
    while t.active_connections() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(t.active_connections(), 2);

    // The next raw connection is shed: it receives exactly one control
    // frame on the reserved correlation id, then EOF.
    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (corr, vt, frame) = read_wire_frame(&mut extra).unwrap();
    assert_eq!(corr, CTRL_CORR, "shed notice rides the control channel");
    assert_eq!(frame.method, CTRL_SHED);
    assert_eq!(
        vt,
        blobseer_rpc::SHED_RETRY_HINT_MS,
        "the shed notice carries a retry-after hint in its vt field"
    );
    let mut buf = [0u8; 8];
    assert_eq!(extra.read(&mut buf).unwrap(), 0, "shed ends in EOF");
    assert!(t.shed_count() > 0);

    // Through the client stack the shed surfaces as a typed Overload
    // carrying the server's hint, never a hang.
    let t2 = transport();
    let c2 = t2.add_node();
    let peer = t2.register_remote(addr);
    let start = Instant::now();
    let err = t2.call(c2, peer, 0, Frame::from_msg(1, &1u64)).unwrap_err();
    assert!(
        matches!(
            err,
            BlobError::Overload {
                retry_after_hint: blobseer_rpc::SHED_RETRY_HINT_MS
            }
        ),
        "{err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(3));
    assert_eq!(t2.pooled_connections(peer), 0);
}

#[test]
fn server_survives_corrupt_and_half_open_clients() {
    // The *server* side of the same coin: a client that sends garbage or
    // disconnects mid-frame must only cost its own connection; the
    // service keeps serving well-behaved callers.
    let t = transport();
    let client = t.add_node();
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    // Garbage envelope length.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.write_all(&[0xFF; 32]).unwrap();
    drop(s);
    // Half a frame, then disconnect.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[1u8; 20]).unwrap();
    drop(s);

    let rpc = RpcClient::new(Arc::clone(&t) as _, client);
    let mut ctx = Ctx::start();
    for i in 0..5u64 {
        let r: u64 = rpc.call(&mut ctx, server, 1, &i).unwrap();
        assert_eq!(r, i, "service must keep serving after hostile clients");
    }
}

#[test]
fn shed_then_backoff_then_admitted_succeeds_under_retry_policy() {
    // The client half of the overload contract end to end: a
    // connection-capped server sheds the first attempt with a typed
    // `Overload` carrying its retry hint; the retry policy backs off;
    // by the retry the congestion has cleared and the call succeeds.
    let t = Arc::new(TcpTransport::with_options(TcpOptions {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_millis(500)),
        max_connections: 1,
        ..TcpOptions::default()
    }));
    let server = t.add_node();
    t.bind(server, Arc::new(Echo));
    let addr = t.addr(server).unwrap();

    // Occupy the single connection slot so the next caller is shed.
    let held = TcpStream::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while t.active_connections() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(t.active_connections(), 1);

    let t2 = transport();
    let c2 = t2.add_node();
    let peer = t2.register_remote(addr);

    let policy = blobseer_rpc::RetryPolicy::default();
    let mut held = Some(held);
    let sheds = std::cell::Cell::new(0u32);
    let t_sleep = Arc::clone(&t);
    let result = policy.run_with(
        |d| {
            std::thread::sleep(d);
            // Congestion clears during the backoff: wait for the server
            // to reap the closed connection before the retry lands.
            let deadline = Instant::now() + Duration::from_secs(2);
            while t_sleep.active_connections() > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        },
        |_attempt| {
            let r = t2.call(c2, peer, 0, Frame::from_msg(1, &7u64));
            if let Err(BlobError::Overload { retry_after_hint }) = &r {
                assert_eq!(*retry_after_hint, blobseer_rpc::SHED_RETRY_HINT_MS);
                sheds.set(sheds.get() + 1);
                // Free the slot so the retry can be admitted.
                held.take();
            }
            let (frame, _vt) = r?;
            blobseer_rpc::parse_response::<u64>(&frame)
        },
    );
    assert_eq!(result.unwrap(), 7, "retry after shed must succeed");
    assert!(sheds.get() >= 1, "the first attempt was shed");
}
