//! The PR 9 overload acceptance case, at the dispatch layer: a slow
//! service behind a bounded [`AdmissionGate`] is driven **open-loop**
//! at ~10× its capacity. The contract under test is the issue's,
//! verbatim:
//!
//! - every rejection is a typed [`BlobError::Overload`] (no silent
//!   drop, no `Unreachable` masquerade),
//! - the p99 latency of *admitted* requests stays within 5× the
//!   unloaded p99 (bounded queueing, not an unbounded buffer), and
//! - nothing hangs — the whole storm resolves in test time.
//!
//! Latency is measured from each request's **scheduled** send time
//! (open-loop discipline: lateness counts against the server, not the
//! generator), exactly like the `bench` workload generator.

use blobseer_proto::BlobError;
use blobseer_rpc::{
    respond, AdmissionControlled, AdmissionGate, AdmissionOptions, Frame, ServerCtx, Service,
};
use blobseer_util::stats::Samples;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A handler with a fixed service time, so capacity is knowable:
/// `max_inflight / SERVICE_TIME` requests per second.
struct Slow;

const SERVICE_TIME: Duration = Duration::from_millis(3);

impl Service for Slow {
    fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        std::thread::sleep(SERVICE_TIME);
        respond(frame, |x: u64| Ok(x))
    }
}

fn p99(samples: &mut Samples) -> f64 {
    samples.percentile(99.0).expect("non-empty samples")
}

#[test]
fn open_loop_overload_sheds_typed_and_bounds_admitted_p99() {
    let gate = Arc::new(AdmissionGate::new(AdmissionOptions {
        max_inflight: 2,
        max_queue: 4,
        queue_wait: Duration::from_millis(6),
        ..AdmissionOptions::default()
    }));
    let svc = Arc::new(AdmissionControlled::new(Slow, Arc::clone(&gate)));

    // Unloaded baseline: closed-loop, one caller, no queueing.
    let mut unloaded = Samples::new();
    for i in 0..50u64 {
        let t0 = Instant::now();
        let mut ctx = ServerCtx::new(0);
        let resp = svc.handle(&mut ctx, &Frame::from_msg(1, &i));
        blobseer_rpc::parse_response::<u64>(&resp).unwrap();
        unloaded.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let unloaded_p99 = p99(&mut unloaded);

    // Open-loop storm: 10× capacity. Capacity = max_inflight (2) /
    // service time (3 ms) ≈ 667/s, so arrivals come every 150 µs.
    let interarrival = Duration::from_micros(150);
    let total: usize = 1500; // ≈ 225 ms of storm
    let next = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let admitted = Arc::new(Mutex::new(Samples::new()));
    let t0 = Instant::now();
    let started = Instant::now();
    let workers: Vec<_> = (0..16)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let next = Arc::clone(&next);
            let shed = Arc::clone(&shed);
            let admitted = Arc::clone(&admitted);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                // Open-loop: fire at the scheduled time, and charge any
                // lateness to the measured latency.
                let scheduled = interarrival * i as u32;
                let now = t0.elapsed();
                if now < scheduled {
                    std::thread::sleep(scheduled - now);
                }
                let mut ctx = ServerCtx::new(0);
                let resp = svc.handle(&mut ctx, &Frame::from_msg(1, &(i as u64)));
                let latency_ms = (t0.elapsed().saturating_sub(scheduled)).as_secs_f64() * 1e3;
                match blobseer_rpc::parse_response::<u64>(&resp) {
                    Ok(echoed) => {
                        assert_eq!(echoed, i as u64);
                        admitted.lock().unwrap().push(latency_ms);
                    }
                    Err(BlobError::Overload { .. }) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("rejections must be typed Overload, got {other:?}"),
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Zero hangs: a 225 ms storm with a 6 ms queue bound resolves fast.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "storm must resolve in test time (took {:?})",
        started.elapsed()
    );

    let shed = shed.load(Ordering::Relaxed);
    let mut admitted = admitted.lock().unwrap();
    let stats = gate.stats();
    assert_eq!(
        stats.admitted + stats.shed,
        total as u64 + 50,
        "every request is either admitted or typed-shed — none vanish"
    );
    assert!(
        shed > 0 && !admitted.is_empty(),
        "10× overload must both admit and shed (admitted {}, shed {shed})",
        admitted.len()
    );
    assert!(
        shed as usize > admitted.len(),
        "at 10× offered load most requests are shed (admitted {}, shed {shed})",
        admitted.len()
    );

    let admitted_p99 = p99(&mut admitted);
    // The bounded queue is the whole point: admitted work waits at most
    // `queue_wait`, so its p99 stays within 5× of unloaded even at 10×
    // offered load. (An unbounded queue would diverge linearly with the
    // storm length.)
    assert!(
        admitted_p99 <= 5.0 * unloaded_p99,
        "admitted p99 {admitted_p99:.2} ms must stay within 5× unloaded p99 {unloaded_p99:.2} ms"
    );
}
