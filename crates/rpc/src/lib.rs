//! # blobseer-rpc
//!
//! The lightweight RPC framework of the system (paper §V.A): typed
//! request/response calls over a pluggable [`Transport`], massive
//! client-side parallelism via [`RpcClient::fan_out`], and per-destination
//! **call aggregation** — the original system's custom optimization that
//! "delays RPC calls to a single machine and streams all of them in a
//! single real RPC call".
//!
//! Virtual time: every call carries the caller's clock ([`Ctx`]) and every
//! handler runs under a [`ServerCtx`] through which it charges processing
//! cost; the transport folds queueing/transfer/latency in. See
//! `blobseer-simnet` for the cluster cost model; the in-process transport
//! here costs nothing and is used by unit tests and embedded deployments.
//!
//! [`TcpTransport`] is the real-socket implementation: frames are
//! gather-written straight from their segment chains (`writev`, no
//! flatten) and inbound payloads are lent out of the receive buffer by
//! refcount — see [`tcp`] for the frame discipline and error taxonomy.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod retry;
pub mod route;
pub mod service;
pub mod tcp;
pub mod transport;

pub use admission::{
    AdmissionControlled, AdmissionGate, AdmissionMode, AdmissionOptions, AdmissionStats,
    OwnedPermit,
};
pub use client::{AggregationPolicy, RpcClient};
pub use frame::{Frame, FRAME_HEADER_BYTES, MAX_FRAME_BODY, METHOD_BATCH};
pub use retry::RetryPolicy;
pub use route::ShardRouter;
pub use service::{
    dispatch_frame, error_frame, ok_frame, parse_response, respond, ServerCtx, Service,
};
pub use tcp::{
    encode_wire_frame, read_wire_frame, ServerMode, TcpOptions, TcpTransport, CTRL_CORR, CTRL_SHED,
    MAX_WIRE_FRAME, SHED_RETRY_HINT_MS,
};
pub use transport::{Ctx, InProcTransport, Transport, TransportResult};
