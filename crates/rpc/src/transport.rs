//! The transport abstraction and a zero-cost in-process implementation.
//!
//! A [`Transport`] moves one frame from a source to a destination node and
//! returns the response frame together with its *virtual* arrival time.
//! `blobseer-simnet` provides the cluster transport with NIC/CPU/latency
//! modelling; [`InProcTransport`] here is the trivial implementation used
//! by unit tests and by embedded (single-process) deployments.

use crate::frame::Frame;
use crate::service::{dispatch_frame, ServerCtx, Service};
use blobseer_proto::{BlobError, NodeId};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Client-side virtual-time context. Threads one logical caller's clock
/// through its sequence of RPCs; parallel fan-outs join with `max`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ctx {
    /// Current virtual time (ns since simulation start).
    pub vt: u64,
}

impl Ctx {
    /// A context starting at virtual time zero.
    pub fn start() -> Self {
        Self { vt: 0 }
    }

    /// A context starting at a given time (e.g., forked from a parent).
    pub fn at(vt: u64) -> Self {
        Self { vt }
    }

    /// Advance the clock by `ns` (local computation).
    pub fn advance(&mut self, ns: u64) {
        self.vt += ns;
    }

    /// Join with a concurrently-executing context (parallel sections
    /// merge with `max`).
    pub fn join(&mut self, other: Ctx) {
        self.vt = self.vt.max(other.vt);
    }
}

/// Moves frames between nodes.
pub trait Transport: Send + Sync {
    /// Deliver `frame` from `from` to `to`, starting at virtual time `vt`;
    /// returns the response frame and its arrival time back at `from`.
    fn call(&self, from: NodeId, to: NodeId, vt: u64, frame: Frame) -> TransportResult;
}

/// Result of a transport call.
pub type TransportResult = Result<(Frame, u64), BlobError>;

/// A transport with zero simulated cost: requests dispatch inline on the
/// caller thread. Virtual time still flows (handlers may charge), so code
/// written against `simnet` behaves identically here, just with free
/// networking.
pub struct InProcTransport {
    services: RwLock<Vec<Option<Arc<dyn Service>>>>,
    messages: AtomicU64,
}

impl Default for InProcTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl InProcTransport {
    /// Empty transport.
    pub fn new() -> Self {
        Self {
            services: RwLock::new(Vec::new()),
            messages: AtomicU64::new(0),
        }
    }

    /// Add a node (returns its id). Nodes without a bound service reject
    /// calls.
    pub fn add_node(&self) -> NodeId {
        let mut g = self.services.write();
        g.push(None);
        // lint: allow(truncating-cast) — node registry is deployment-scale
        // (hundreds of slots), nowhere near u32::MAX
        NodeId(g.len() as u32 - 1)
    }

    /// Bind a service to a node.
    pub fn bind(&self, node: NodeId, svc: Arc<dyn Service>) {
        self.services.write()[node.0 as usize] = Some(svc);
    }

    /// Total messages carried (for aggregation assertions).
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

impl Transport for InProcTransport {
    fn call(&self, _from: NodeId, to: NodeId, vt: u64, frame: Frame) -> TransportResult {
        let svc = {
            let g = self.services.read();
            g.get(to.0 as usize).cloned().flatten()
        };
        let Some(svc) = svc else {
            return Err(BlobError::Unreachable("no service bound"));
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let mut sctx = ServerCtx::new(vt);
        let resp = dispatch_frame(svc.as_ref(), &mut sctx, &frame);
        Ok((resp, sctx.vt + sctx.charged + sctx.charged_latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{respond, Service};

    struct Charger;

    impl Service for Charger {
        fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            ctx.charge(1000);
            respond(frame, |x: u64| Ok(x))
        }
    }

    #[test]
    fn ctx_arithmetic() {
        let mut c = Ctx::start();
        c.advance(10);
        assert_eq!(c.vt, 10);
        c.join(Ctx::at(5));
        assert_eq!(c.vt, 10);
        c.join(Ctx::at(50));
        assert_eq!(c.vt, 50);
    }

    #[test]
    fn inproc_charges_flow_to_vt() {
        let t = InProcTransport::new();
        let c = t.add_node();
        let s = t.add_node();
        t.bind(s, Arc::new(Charger));
        let (resp, vt) = t.call(c, s, 500, Frame::from_msg(1, &9u64)).unwrap();
        assert_eq!(vt, 1500, "arrival + charge");
        assert_eq!(crate::service::parse_response::<u64>(&resp).unwrap(), 9);
    }

    #[test]
    fn unbound_node_unreachable() {
        let t = InProcTransport::new();
        let c = t.add_node();
        let ghost = t.add_node();
        assert!(t.call(c, ghost, 0, Frame::from_msg(1, &1u64)).is_err());
    }
}
