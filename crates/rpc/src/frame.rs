//! Wire frames.
//!
//! A frame is `(method, body)`; the body is the `Wire`-encoded request or
//! response. Batches — the paper's RPC aggregation ("delays RPC calls to a
//! single machine and streams all of them in a single real RPC call",
//! §V.A) — are themselves ordinary frames whose method is
//! [`METHOD_BATCH`] and whose body is a `Vec<Frame>`.

use blobseer_proto::wire::{Reader, Wire};
use blobseer_proto::CodecError;

/// Reserved method id for aggregated frames.
pub const METHOD_BATCH: u16 = 0x00FF;

/// Per-frame wire overhead besides the body: method id (2) + body length
/// prefix (4).
pub const FRAME_HEADER_BYTES: usize = 6;

/// One RPC message on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Method id (see `blobseer_proto::messages::method`).
    pub method: u16,
    /// Encoded request or response body.
    pub body: Vec<u8>,
}

impl Frame {
    /// Build a frame from a typed message.
    pub fn from_msg<M: Wire>(method: u16, msg: &M) -> Self {
        Self { method, body: msg.to_wire() }
    }

    /// Decode the body as a typed message.
    pub fn parse<M: Wire>(&self) -> Result<M, CodecError> {
        M::from_wire(&self.body)
    }

    /// Total bytes this frame occupies on the wire.
    pub fn wire_size(&self) -> usize {
        FRAME_HEADER_BYTES + self.body.len()
    }

    /// Wrap frames into one aggregated batch frame.
    pub fn batch(frames: Vec<Frame>) -> Frame {
        let body = frames.to_wire();
        Frame { method: METHOD_BATCH, body }
    }

    /// If this is a batch frame, unpack the contained frames.
    pub fn unbatch(&self) -> Option<Result<Vec<Frame>, CodecError>> {
        (self.method == METHOD_BATCH).then(|| Vec::<Frame>::from_wire(&self.body))
    }
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.method.encode(out);
        (self.body.len() as u32).encode(out);
        out.extend_from_slice(&self.body);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let method = u16::decode(r)?;
        let len = u32::decode(r)? as usize;
        let body = r.take(len)?.to_vec();
        Ok(Frame { method, body })
    }

    fn wire_hint(&self) -> usize {
        self.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = Frame::from_msg(0x0101, &42u64);
        assert_eq!(f.wire_size(), 6 + 8);
        let back = Frame::from_wire(&f.to_wire()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.parse::<u64>().unwrap(), 42);
    }

    #[test]
    fn batch_roundtrip() {
        let frames = vec![
            Frame::from_msg(1, &1u32),
            Frame::from_msg(2, &"two".to_string()),
            Frame::from_msg(3, &vec![3u64, 33]),
        ];
        let b = Frame::batch(frames.clone());
        assert_eq!(b.method, METHOD_BATCH);
        let unpacked = b.unbatch().unwrap().unwrap();
        assert_eq!(unpacked, frames);
        // Non-batch frames return None.
        assert!(frames[0].unbatch().is_none());
    }

    #[test]
    fn batch_is_smaller_than_separate_messages() {
        // The aggregation saves per-message overhead; on the wire the
        // batch adds one header but a real transport adds per-*message*
        // costs (latency, connection work), which is the point.
        let frames: Vec<Frame> = (0..10).map(|i| Frame::from_msg(1, &(i as u64))).collect();
        let separate: usize = frames.iter().map(Frame::wire_size).sum();
        let batched = Frame::batch(frames).wire_size();
        assert!(batched <= separate + FRAME_HEADER_BYTES + 4);
    }

    #[test]
    fn corrupt_frame_fails() {
        let f = Frame::from_msg(7, &7u64);
        let mut bytes = f.to_wire();
        bytes.truncate(bytes.len() - 1);
        assert!(Frame::from_wire(&bytes).is_err());
    }
}
