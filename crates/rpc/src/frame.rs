//! Wire frames.
//!
//! A frame is `(method, body)`; the body is the `Wire`-encoded request or
//! response, held as a [`ByteChain`] — an iovec-style segment list in
//! which page payloads are *shared* segments (refcount bumps), so
//! building, batching and unpacking frames never copies page bytes.
//! Batches — the paper's RPC aggregation ("delays RPC calls to a single
//! machine and streams all of them in a single real RPC call", §V.A) —
//! are themselves ordinary frames whose method is [`METHOD_BATCH`] and
//! whose body is a `Vec<Frame>`; sub-frame payload segments pass through
//! the batch encoding intact.

use blobseer_proto::wire::{decode_len, ByteChain, Reader, Wire, WireBuf, MAX_LEN};
use blobseer_proto::CodecError;

/// Reserved method id for aggregated frames.
pub const METHOD_BATCH: u16 = 0x00FF;

/// Largest legal frame body, mirrored on encode and decode: the seed's
/// `as u32` cast silently wrapped for bodies ≥ 4 GiB; now any body above
/// this cap is a [`CodecError::LengthOverflow`] on both sides of the
/// wire.
pub const MAX_FRAME_BODY: u64 = MAX_LEN;

/// Per-frame wire overhead besides the body: method id (2) + body length
/// prefix (4).
pub const FRAME_HEADER_BYTES: usize = 6;

/// One RPC message on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Method id (see `blobseer_proto::messages::method`).
    pub method: u16,
    /// Encoded request or response body (payload segments shared).
    pub body: ByteChain,
}

impl Frame {
    /// Build a frame from a typed message. Page payloads inside `msg`
    /// are attached as shared segments, not copied.
    pub fn from_msg<M: Wire>(method: u16, msg: &M) -> Self {
        Self {
            method,
            body: msg.to_chain(),
        }
    }

    /// Decode the body as a typed message. Page payloads decode as
    /// refcount borrows of this frame's segments.
    pub fn parse<M: Wire>(&self) -> Result<M, CodecError> {
        M::from_chain(&self.body)
    }

    /// Total bytes this frame occupies on the wire.
    pub fn wire_size(&self) -> usize {
        FRAME_HEADER_BYTES + self.body.len()
    }

    /// Wrap frames into one aggregated batch frame. Sub-frame bodies are
    /// chained by reference — a batched page payload is the same
    /// allocation the caller handed to [`Frame::from_msg`].
    ///
    /// Fails with [`CodecError::LengthOverflow`] when a sub-frame body
    /// exceeds [`MAX_FRAME_BODY`] — batching is the one in-process spot
    /// where a frame header (with its length prefix) is actually
    /// serialized, so the cast must be checked here, not just at the
    /// socket.
    pub fn batch(frames: Vec<Frame>) -> Result<Frame, CodecError> {
        Ok(Frame {
            method: METHOD_BATCH,
            body: frames.try_to_chain()?,
        })
    }

    /// If this is a batch frame, unpack the contained frames. Sub-frame
    /// bodies are sub-chains sharing this frame's segments.
    pub fn unbatch(&self) -> Option<Result<Vec<Frame>, CodecError>> {
        (self.method == METHOD_BATCH).then(|| Vec::<Frame>::from_chain(&self.body))
    }
}

impl Wire for Frame {
    fn encode(&self, out: &mut WireBuf) {
        self.method.encode(out);
        // Checked: a body above MAX_FRAME_BODY poisons the builder
        // (surfaced by try_to_chain / finish_checked) instead of
        // wrapping the u32 prefix into a corrupt length.
        out.put_len_prefix(self.body.len());
        out.put_chain(&self.body);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let method = u16::decode(r)?;
        // decode_len enforces the same MAX_FRAME_BODY cap before any
        // bytes are taken, and take_chain checks the declared length
        // against what actually remains — a truncated or hostile prefix
        // is an error, never a panic or an oversized allocation.
        let len = decode_len(r)?;
        let body = r.take_chain(len)?;
        Ok(Frame { method, body })
    }

    fn wire_hint(&self) -> usize {
        self.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::PageBuf;

    #[test]
    fn frame_roundtrip() {
        let f = Frame::from_msg(0x0101, &42u64);
        assert_eq!(f.wire_size(), 6 + 8);
        let back = Frame::from_wire(&f.to_wire()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.parse::<u64>().unwrap(), 42);
    }

    #[test]
    fn batch_roundtrip() {
        let frames = vec![
            Frame::from_msg(1, &1u32),
            Frame::from_msg(2, &"two".to_string()),
            Frame::from_msg(3, &vec![3u64, 33]),
        ];
        let b = Frame::batch(frames.clone()).unwrap();
        assert_eq!(b.method, METHOD_BATCH);
        let unpacked = b.unbatch().unwrap().unwrap();
        assert_eq!(unpacked, frames);
        // Non-batch frames return None.
        assert!(frames[0].unbatch().is_none());
    }

    #[test]
    fn batch_is_smaller_than_separate_messages() {
        // The aggregation saves per-message overhead; on the wire the
        // batch adds one header but a real transport adds per-*message*
        // costs (latency, connection work), which is the point.
        let frames: Vec<Frame> = (0..10).map(|i| Frame::from_msg(1, &(i as u64))).collect();
        let separate: usize = frames.iter().map(Frame::wire_size).sum();
        let batched = Frame::batch(frames).unwrap().wire_size();
        assert!(batched <= separate + FRAME_HEADER_BYTES + 4);
    }

    #[test]
    fn corrupt_frame_fails() {
        let f = Frame::from_msg(7, &7u64);
        let mut bytes = f.to_wire();
        bytes.truncate(bytes.len() - 1);
        assert!(Frame::from_wire(&bytes).is_err());
    }

    /// A chain whose logical length exceeds `target` built from refcount
    /// clones of one segment — gigabytes on the wire, megabytes in RAM.
    fn huge_chain(target: u64) -> ByteChain {
        let seg = PageBuf::from_vec(vec![0xEE; 1 << 24]); // 16 MiB
        let mut chain = ByteChain::new();
        while (chain.len() as u64) <= target {
            chain.push(seg.clone());
        }
        chain
    }

    #[test]
    fn oversized_body_is_an_error_not_a_wrapped_prefix() {
        // Just over the cap: the seed encoded this with a wrapped u32
        // length prefix; now every checked encode path refuses.
        let f = Frame {
            method: 1,
            body: huge_chain(MAX_FRAME_BODY),
        };
        assert!(matches!(
            f.try_to_chain(),
            Err(CodecError::LengthOverflow { .. })
        ));
        assert!(matches!(
            Frame::batch(vec![f]),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn four_gib_body_does_not_silently_truncate() {
        // Past u32::MAX: the exact wrap the seed had. Same checked error.
        let f = Frame {
            method: 1,
            body: huge_chain(u64::from(u32::MAX)),
        };
        assert!(f.body.len() as u64 > u64::from(u32::MAX));
        assert!(matches!(
            f.try_to_chain(),
            Err(CodecError::LengthOverflow { .. })
        ));
        assert!(matches!(
            Frame::batch(vec![f]),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn hostile_body_length_prefix_is_rejected_on_decode() {
        // method(2) + a declared body length far beyond MAX_FRAME_BODY.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::from_wire(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
        // An in-cap prefix with missing bytes is clean EOF, not a panic.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            Frame::from_wire(&bytes),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn page_payload_is_shared_through_framing_and_batching() {
        use blobseer_util::copymeter;
        let page = PageBuf::from_vec(vec![9u8; 16384]);
        let before = copymeter::thread_snapshot();

        // Framing a payload-carrying message: no page copy.
        let f1 = Frame::from_msg(1, &page);
        let f2 = Frame::from_msg(1, &page);
        assert_eq!(before.bytes_since(), 0, "framing must not copy the page");
        assert_eq!(page.ref_count(), 3, "two frames share the one allocation");

        // Batching both frames: header chunks consolidate (a few bytes),
        // page segments pass through by reference.
        let b = Frame::batch(vec![f1, f2]).unwrap();
        assert!(
            before.bytes_since() < 64,
            "batching must not copy page bytes (copied {})",
            before.bytes_since()
        );

        // Unbatching and parsing lends the same allocation back out.
        let frames = b.unbatch().unwrap().unwrap();
        let got: PageBuf = frames[1].parse().unwrap();
        assert!(
            before.bytes_since() < 64,
            "unbatch + parse must not copy page bytes (copied {})",
            before.bytes_since()
        );
        assert!(got.same_allocation(&page));
        assert_eq!(got, page);
    }

    #[test]
    fn chained_frames_flatten_identically() {
        // A frame carrying shared segments must serialize to the same
        // bytes a contiguous encoder would produce (what a socket sends).
        let page = PageBuf::from_vec((0u16..2048).map(|x| x as u8).collect());
        let f = Frame::from_msg(0x0101, &page);
        let flat = f.to_wire();
        let back = Frame::from_wire(&flat).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.parse::<PageBuf>().unwrap(), page);
    }
}
