//! Bounded admission control at the dispatch layer.
//!
//! The PR 6 reactor sheds whole *connections* past
//! [`TcpOptions::max_connections`](crate::TcpOptions::max_connections);
//! this module sheds individual *requests* past a per-service capacity,
//! with the same discipline: **bounded queue, typed rejection, never a
//! hang**. An [`AdmissionGate`] tracks requests executing right now
//! (`max_inflight`) plus a bounded set of waiters (`max_queue`); a
//! request that finds both full — or waits longer than `queue_wait` —
//! is rejected with [`BlobError::Overload`] carrying a retry-after hint
//! derived from queue occupancy, which the client-side
//! [`RetryPolicy`](crate::retry::RetryPolicy) honors.
//!
//! [`AdmissionControlled`] wraps any [`Service`] with a gate, so the
//! same bound applies on the in-process transport and on TCP — the gate
//! sits at the dispatch layer, after framing, before the handler.
//!
//! The fast path is lock-free: admission under capacity is one CAS on
//! an atomic counter. The mutex + condvar pair is touched only by
//! queued waiters and by releases that observe waiters — never on an
//! uncontended request, so steady-state locks-per-op stays unchanged.

use crate::frame::Frame;
use crate::service::{error_frame, ServerCtx, Service};
use blobseer_proto::BlobError;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which clock the gate's queue bound is measured against.
///
/// The *policy* is identical in both modes — bounded queue, typed
/// [`BlobError::Overload`], never a hang — only the notion of "queue"
/// changes with the transport underneath:
///
/// * [`Wall`](AdmissionMode::Wall) counts **occupied slots**: requests
///   resident on the server right now (executing or transmitting their
///   response — see [`OwnedPermit`]) plus a bounded set of parked
///   waiters. This is the mode for real transports, where concurrency
///   is physical.
/// * [`Virtual`](AdmissionMode::Virtual) bounds the provider's
///   **projected virtual backlog**: handlers under the simulated
///   transport execute inline and charge virtual time, so "queueing"
///   is a number, not a parked thread. The gate keeps a next-free
///   register in the same style as the simulator's resource calendars;
///   a request arriving when the projected wait exceeds `max_backlog_ns`
///   is shed. This makes open-loop overload benches deterministic: the
///   admit/shed frontier depends on virtual arrival times and modelled
///   service costs, not on how fast the host happens to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Wall-clock slot gating (`max_inflight` + `max_queue` waiters).
    Wall,
    /// Virtual-time backlog gating for simulated transports.
    Virtual {
        /// Admit while the provider's projected virtual queueing delay
        /// is at most this many nanoseconds; shed typed past it.
        max_backlog_ns: u64,
        /// Virtual NIC occupancy charged per KiB of *response* — the
        /// transmission half of a request's server residency, which the
        /// handler's CPU charges alone would miss (a page read computes
        /// for microseconds and transmits for milliseconds). Mirror of
        /// the cost model's `transfer_ns`. Request bytes are *not*
        /// charged: admission happens after the request has been
        /// received (exactly as in wall mode), and the transport's
        /// ingress register has already folded that transfer into the
        /// arrival clock.
        resp_ns_per_kib: u64,
    },
}

/// Tunables for one [`AdmissionGate`] (typically one per storage node).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionOptions {
    /// Wall-clock slots or virtual-time backlog (see [`AdmissionMode`]).
    pub mode: AdmissionMode,
    /// Requests allowed to execute concurrently (wall mode).
    pub max_inflight: usize,
    /// Waiters allowed past `max_inflight` (wall mode). A request
    /// arriving with the queue full is shed immediately; the queue is
    /// never unbounded.
    pub max_queue: usize,
    /// Longest a queued request waits for a permit before it is shed
    /// (wall mode).
    pub queue_wait: Duration,
    /// Scale for the retry-after hint: a shed response suggests roughly
    /// `base_retry_hint_ms × (waiters + 1)` milliseconds of backoff (in
    /// virtual mode, at least the projected backlog drain time).
    pub base_retry_hint_ms: u64,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        AdmissionOptions {
            mode: AdmissionMode::Wall,
            max_inflight: 64,
            max_queue: 256,
            queue_wait: Duration::from_millis(50),
            base_retry_hint_ms: 5,
        }
    }
}

/// Monotonic counters a gate exposes for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (fast path or after queueing).
    pub admitted: u64,
    /// Requests rejected with [`BlobError::Overload`].
    pub shed: u64,
    /// Admitted requests that had to queue first.
    pub queued: u64,
}

/// A bounded admission queue: `max_inflight` permits, `max_queue`
/// waiters, typed [`BlobError::Overload`] past either bound.
pub struct AdmissionGate {
    opts: AdmissionOptions,
    inflight: AtomicUsize,
    waiting: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    queued: AtomicU64,
    // Virtual mode only: the provider's next-free virtual time — the
    // same max-and-advance register discipline the simulator uses for
    // CPUs and NICs, so concurrent threads fold their charges in
    // without a lock.
    vt_backlog: AtomicU64,
    // Contended path only: waiters park here; releases that observe
    // waiters lock it to publish the freed permit (see `release`).
    lock: Mutex<()>,
    cv: Condvar,
}

/// RAII permit for one admitted request; releasing wakes one waiter.
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionPermit")
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// An [`AdmissionPermit`] that owns its gate by `Arc`, so it can outlive
/// the dispatching stack frame. This is what makes admission bound the
/// request's **full server residency**: the TCP transports park the
/// owned permit in [`ServerCtx`] and drop it only once the response has
/// left the server — a fast handler with a large response (a page read)
/// keeps its gate slot through the transmission, so the bounded queue
/// can never leak into an unbounded response-side buffer.
pub struct OwnedPermit {
    gate: Arc<AdmissionGate>,
}

impl std::fmt::Debug for OwnedPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OwnedPermit")
    }
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

impl AdmissionGate {
    /// Build a gate. `max_inflight` is clamped to ≥ 1 (a zero-permit
    /// gate would shed everything, which is a misconfiguration, not a
    /// policy).
    pub fn new(opts: AdmissionOptions) -> Self {
        let opts = AdmissionOptions {
            max_inflight: opts.max_inflight.max(1),
            ..opts
        };
        AdmissionGate {
            opts,
            inflight: AtomicUsize::new(0),
            waiting: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            vt_backlog: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The options the gate was built with.
    pub fn options(&self) -> &AdmissionOptions {
        &self.opts
    }

    /// Counters so far.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
        }
    }

    /// One CAS attempt at an execution permit.
    fn try_reserve(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.opts.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The shed hint grows with queue depth so heavier overload asks
    /// for longer backoff.
    fn retry_hint_ms(&self) -> u64 {
        let depth = self.waiting.load(Ordering::Relaxed) as u64;
        self.opts.base_retry_hint_ms.saturating_mul(depth + 1)
    }

    /// Admit or shed. Returns the permit (held for the duration of the
    /// request) or a typed [`BlobError::Overload`]; blocks at most
    /// `queue_wait`, never indefinitely.
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, BlobError> {
        self.admit_inner().map(|()| AdmissionPermit { gate: self })
    }

    /// [`AdmissionGate::admit`], but the permit owns the gate — for
    /// transports that keep it alive past the handler's return (see
    /// [`OwnedPermit`]).
    pub fn admit_owned(self: &Arc<Self>) -> Result<OwnedPermit, BlobError> {
        self.admit_inner().map(|()| OwnedPermit {
            gate: Arc::clone(self),
        })
    }

    /// The admission state machine: reserve fast, else queue bounded,
    /// else shed typed. On `Ok` the caller owns one un-materialized
    /// permit and must wrap it in an RAII type immediately.
    fn admit_inner(&self) -> Result<(), BlobError> {
        if self.try_reserve() {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        // Full: join the bounded queue, or shed right away.
        let mut cur = self.waiting.load(Ordering::Relaxed);
        loop {
            if cur >= self.opts.max_queue {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(BlobError::Overload {
                    retry_after_hint: self.retry_hint_ms(),
                });
            }
            match self.waiting.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let got = self.wait_for_permit();
        self.waiting.fetch_sub(1, Ordering::AcqRel);
        if got {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            self.queued.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
            Err(BlobError::Overload {
                retry_after_hint: self.retry_hint_ms(),
            })
        }
    }

    /// Park until a permit frees up (true) or the wait budget runs out
    /// (false).
    fn wait_for_permit(&self) -> bool {
        let deadline = Instant::now() + self.opts.queue_wait;
        let mut guard = self.lock.lock();
        loop {
            // Re-check under the lock: `release` publishes permits
            // under this lock whenever waiters are registered, so a
            // free permit cannot slip past a parked waiter.
            if self.try_reserve() {
                return true;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || self.cv.wait_for(&mut guard, left).timed_out() {
                // One last try: a release may have raced the timeout.
                return self.try_reserve();
            }
        }
    }

    /// Virtual-mode admission: shed when the projected virtual queueing
    /// delay at arrival time `vt` exceeds the configured backlog bound.
    /// Never blocks — in virtual time, "waiting" is an addend on the
    /// response clock, not a parked thread.
    pub fn admit_virtual(&self, vt: u64) -> Result<(), BlobError> {
        let AdmissionMode::Virtual { max_backlog_ns, .. } = self.opts.mode else {
            return Err(BlobError::Internal("admit_virtual on a wall-mode gate"));
        };
        let wait = self.vt_backlog.load(Ordering::Relaxed).saturating_sub(vt);
        if wait > max_backlog_ns {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::Overload {
                retry_after_hint: self.opts.base_retry_hint_ms.max(wait.div_ceil(1_000_000)),
            });
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if wait > 0 {
            self.queued.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fold an admitted request's virtual occupancy (`cost_ns`, CPU plus
    /// response transmission) into the backlog register: the provider is
    /// busy until `max(backlog, vt) + cost_ns`.
    pub fn occupy_virtual(&self, vt: u64, cost_ns: u64) {
        let _ = self
            .vt_backlog
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |end| {
                Some(end.max(vt).saturating_add(cost_ns))
            });
    }

    /// The virtual next-free time (0 on wall-mode gates).
    pub fn vt_backlog(&self) -> u64 {
        self.vt_backlog.load(Ordering::Relaxed)
    }

    /// Return a permit; wake one waiter if any are parked.
    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::Release);
        if self.waiting.load(Ordering::Acquire) > 0 {
            // Take the lock so the wake cannot land between a waiter's
            // permit check and its park (missed-wakeup race).
            let _guard = self.lock.lock();
            self.cv.notify_one();
        }
    }
}

/// A [`Service`] wrapper applying an [`AdmissionGate`] to every
/// dispatched frame: admitted requests run the inner handler (queueing
/// time is charged to the caller's virtual clock as latency), shed
/// requests answer with a typed [`BlobError::Overload`] error frame.
pub struct AdmissionControlled<S> {
    inner: S,
    gate: Arc<AdmissionGate>,
}

impl<S: Service> AdmissionControlled<S> {
    /// Wrap `inner` behind `gate`.
    pub fn new(inner: S, gate: Arc<AdmissionGate>) -> Self {
        AdmissionControlled { inner, gate }
    }

    /// The gate, for stats inspection.
    pub fn gate(&self) -> &Arc<AdmissionGate> {
        &self.gate
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Service> Service for AdmissionControlled<S> {
    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match self.gate.opts.mode {
            AdmissionMode::Wall => {
                let started = Instant::now();
                match self.gate.admit_owned() {
                    Ok(permit) => {
                        let waited = started.elapsed();
                        if waited > Duration::ZERO {
                            let ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
                            ctx.charge_latency(ns);
                        }
                        let resp = self.inner.handle(ctx, frame);
                        // The permit outlives the handler: it is released
                        // only when the transport has pushed the response
                        // out, so the gate bounds the request's whole
                        // server residency.
                        ctx.hold(Box::new(permit));
                        resp
                    }
                    Err(e) => error_frame(frame.method, e),
                }
            }
            AdmissionMode::Virtual {
                resp_ns_per_kib, ..
            } => {
                match self.gate.admit_virtual(ctx.vt) {
                    Ok(()) => {
                        let charged_before = ctx.charged;
                        let resp = self.inner.handle(ctx, frame);
                        // Occupancy = handler CPU + response NIC time:
                        // the virtual analogue of holding the permit
                        // through transmission.
                        let xmit = (resp.wire_size() as u64).saturating_mul(resp_ns_per_kib) / 1024;
                        self.gate
                            .occupy_virtual(ctx.vt, (ctx.charged - charged_before) + xmit);
                        resp
                    }
                    Err(e) => error_frame(frame.method, e),
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn gate(inflight: usize, queue: usize, wait_ms: u64) -> AdmissionGate {
        AdmissionGate::new(AdmissionOptions {
            mode: AdmissionMode::Wall,
            max_inflight: inflight,
            max_queue: queue,
            queue_wait: Duration::from_millis(wait_ms),
            base_retry_hint_ms: 5,
        })
    }

    fn vt_gate(max_backlog_ns: u64, resp_ns_per_kib: u64) -> AdmissionGate {
        AdmissionGate::new(AdmissionOptions {
            mode: AdmissionMode::Virtual {
                max_backlog_ns,
                resp_ns_per_kib,
            },
            ..AdmissionOptions::default()
        })
    }

    #[test]
    fn admits_under_capacity() {
        let g = gate(2, 0, 10);
        let a = g.admit().unwrap();
        let b = g.admit().unwrap();
        drop(a);
        drop(b);
        assert_eq!(g.stats().admitted, 2);
        assert_eq!(g.stats().shed, 0);
    }

    #[test]
    fn sheds_past_queue_with_typed_overload_and_growing_hint() {
        let g = gate(1, 0, 10);
        let held = g.admit().unwrap();
        let err = g.admit().unwrap_err();
        match err {
            BlobError::Overload { retry_after_hint } => assert!(retry_after_hint >= 5),
            other => panic!("expected Overload, got {other:?}"),
        }
        drop(held);
        assert_eq!(g.stats().shed, 1);
    }

    #[test]
    fn queued_request_is_admitted_when_a_permit_frees() {
        let g = Arc::new(gate(1, 4, 2_000));
        let held = g.admit().unwrap();
        let g2 = Arc::clone(&g);
        let waiter = thread::spawn(move || g2.admit().map(|_p| ()));
        // Give the waiter time to park, then free the permit.
        thread::sleep(Duration::from_millis(50));
        drop(held);
        waiter.join().unwrap().expect("queued request admitted");
        let s = g.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.queued, 1);
    }

    #[test]
    fn queue_wait_is_bounded() {
        let g = gate(1, 4, 20);
        let _held = g.admit().unwrap();
        let t0 = Instant::now();
        let err = g.admit().unwrap_err();
        assert!(matches!(err, BlobError::Overload { .. }));
        // Never a hang: the shed lands within a small multiple of the
        // configured wait.
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn virtual_mode_sheds_past_the_backlog_bound() {
        let g = vt_gate(1_000_000, 0);
        // Empty backlog: admitted, then 3 ms of occupancy lands at vt=0.
        g.admit_virtual(0).unwrap();
        g.occupy_virtual(0, 3_000_000);
        assert_eq!(g.vt_backlog(), 3_000_000);
        // A request at vt=1 ms faces a 2 ms projected wait > 1 ms bound.
        let err = g.admit_virtual(1_000_000).unwrap_err();
        match err {
            BlobError::Overload { retry_after_hint } => {
                assert!(
                    retry_after_hint >= 2,
                    "hint covers the drain: {retry_after_hint}"
                );
            }
            other => panic!("expected Overload, got {other:?}"),
        }
        // At vt=2.5 ms the backlog has drained to 0.5 ms: admitted, and
        // counted as queued (nonzero projected wait).
        g.admit_virtual(2_500_000).unwrap();
        let s = g.stats();
        assert_eq!((s.admitted, s.shed, s.queued), (2, 1, 1));
    }

    #[test]
    fn virtual_occupancy_advances_like_a_calendar() {
        let g = vt_gate(u64::MAX, 0);
        g.occupy_virtual(0, 10);
        // A later arrival starts after the earlier work drains…
        g.occupy_virtual(5, 10);
        assert_eq!(g.vt_backlog(), 20);
        // …and an idle gap resets the start to the arrival time.
        g.occupy_virtual(100, 10);
        assert_eq!(g.vt_backlog(), 110);
    }

    #[test]
    fn virtual_admit_on_wall_gate_is_a_typed_misuse() {
        let g = gate(1, 0, 10);
        assert!(matches!(g.admit_virtual(0), Err(BlobError::Internal(_))));
    }

    #[test]
    fn release_wakes_exactly_not_more_than_capacity() {
        let g = Arc::new(gate(2, 8, 2_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(thread::spawn(move || {
                let permit = g.admit();
                if permit.is_ok() {
                    thread::sleep(Duration::from_millis(5));
                }
                permit.map(|_p| ()).is_ok()
            }));
        }
        let admitted = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        // Queue is deep and waits are long relative to hold time:
        // everyone gets through, two at a time.
        assert_eq!(admitted, 8);
    }
}
