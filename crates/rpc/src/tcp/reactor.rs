//! The event-driven server engine: N readiness loops + a bounded
//! dispatch pool.
//!
//! Each loop owns a slab of nonblocking listeners and connections and
//! blocks in [`Poller::wait`]. A connection's lifecycle never leaves
//! its loop; the only cross-thread traffic is the command injector
//! (listener registration from `bind`, completions from the dispatch
//! pool) drained after each wakeup.
//!
//! Invariants carried across partial readiness:
//!
//! * **Reads** accumulate the 4-byte length prefix, then the wire body,
//!   into one buffer per frame across any number of readiness events;
//!   the length is validated against [`MAX_WIRE_FRAME`] before the
//!   body is allocated, and decode lends payload ranges out of that
//!   one buffer by refcount.
//! * **Writes** gather-write from the response's segment chain; a
//!   partial write leaves a byte cursor on the connection and the
//!   remaining slices are rebuilt (and advanced) on the next writable
//!   event — page bytes are never copied to resume.
//! * **Backpressure**: a connection whose in-flight budget is spent, or
//!   that hits a full dispatch queue, parks one decoded frame and drops
//!   its read interest; it resumes when a completion (or the periodic
//!   tick) finds pool room. The kernel socket buffer — not an unbounded
//!   user-space queue — absorbs the client's enthusiasm.
//! * **Shedding**: fd exhaustion at `accept` drops the listener's
//!   reserve fd, accepts the waiting connection, writes it a
//!   [`CTRL_SHED`](super::CTRL_SHED) frame and closes it. If even that
//!   fails the listener's interest is parked briefly instead of
//!   busy-spinning a level-triggered loop.
//!
//! Completions for a connection that died meanwhile are dropped by an
//! epoch check (slab slots are reused; epochs are not).

use super::{
    encode_head, is_fd_exhaustion, open_reserve_fd, shed_connection, Shared, TcpOptions,
    ENVELOPE_FIXED, ENVELOPE_LEN_BYTES, MAX_WIRE_FRAME, WIRE_HEAD,
};
use crate::frame::{Frame, MAX_FRAME_BODY};
use crate::service::{dispatch_frame, ServerCtx, Service};
use blobseer_proto::wire::ByteChain;
use parking_lot::{Condvar, Mutex};
use polling::Poller;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Loop wakeup granularity: the ceiling on how stale a timeout sweep,
/// paused-listener re-arm, or queue-full retry can be.
const TICK: Duration = Duration::from_millis(50);

pub(crate) enum Cmd {
    Listen {
        listener: TcpListener,
        svc: Arc<dyn Service>,
        alive: Arc<AtomicBool>,
    },
    Complete {
        token: usize,
        epoch: u64,
        corr: u64,
        vt: u64,
        frame: Frame,
        /// Request state pinned past the handler (admission permits);
        /// dropped when the response has been fully written — or the
        /// connection dies first.
        held: Vec<Box<dyn std::any::Any + Send>>,
    },
    Close {
        token: usize,
        epoch: u64,
    },
}

/// The server engine handle owned by the transport.
pub(crate) struct Reactor {
    loops: Vec<LoopHandle>,
    pool: Arc<DispatchPool>,
    next: AtomicUsize,
}

struct LoopHandle {
    poller: Arc<Poller>,
    injector: Arc<Mutex<Vec<Cmd>>>,
    handle: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Start the event loops and the dispatch pool. Fails (so the
    /// transport can fall back to thread-per-connection) only if a
    /// readiness poller cannot be created.
    pub(crate) fn start(opts: &TcpOptions, shared: Arc<Shared>) -> io::Result<Reactor> {
        let n = opts.event_loops.max(1);
        // Create every poller first: no threads to unwind on failure.
        let mut pollers = Vec::with_capacity(n);
        for _ in 0..n {
            pollers.push(Arc::new(Poller::new()?));
        }
        let pool = DispatchPool::start(opts.dispatch_threads.max(1), opts.dispatch_queue.max(1));
        let loops = pollers
            .into_iter()
            .map(|poller| {
                let injector = Arc::new(Mutex::new(Vec::new()));
                let env = LoopEnv {
                    poller: Arc::clone(&poller),
                    injector: Arc::clone(&injector),
                    pool: Arc::clone(&pool),
                    shared: Arc::clone(&shared),
                    io_timeout: opts.io_timeout,
                    max_conn_inflight: opts.max_conn_inflight.max(1),
                    max_connections: opts.max_connections,
                };
                let handle = std::thread::spawn(move || run_loop(env));
                LoopHandle {
                    poller,
                    injector,
                    handle: Some(handle),
                }
            })
            .collect();
        Ok(Reactor {
            loops,
            pool,
            next: AtomicUsize::new(0),
        })
    }

    /// Hand a listener (and its service) to the next loop round-robin.
    pub(crate) fn add_listener(
        &self,
        listener: TcpListener,
        svc: Arc<dyn Service>,
        alive: Arc<AtomicBool>,
    ) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.loops.len();
        let lp = &self.loops[i];
        lp.injector.lock().push(Cmd::Listen {
            listener,
            svc,
            alive,
        });
        let _ = lp.poller.notify();
    }

    /// Join every loop and worker. The caller must have set the shared
    /// shutdown flag first.
    pub(crate) fn stop(&mut self) {
        for lp in &self.loops {
            let _ = lp.poller.notify();
        }
        for lp in &mut self.loops {
            if let Some(h) = lp.handle.take() {
                let _ = h.join();
            }
        }
        self.pool.stop();
    }
}

// ---------------------------------------------------------------------
// Dispatch pool
// ---------------------------------------------------------------------

/// One decoded request travelling to the dispatch pool and back (as a
/// [`Cmd::Complete`] through the owning loop's injector).
pub(crate) struct Job {
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    token: usize,
    epoch: u64,
    corr: u64,
    vt: u64,
    frame: Frame,
    injector: Arc<Mutex<Vec<Cmd>>>,
    poller: Arc<Poller>,
}

impl Job {
    fn run(self) {
        let cmd = if self.alive.load(Ordering::Acquire) {
            let mut sctx = ServerCtx::new(self.vt);
            let resp = dispatch_frame(self.svc.as_ref(), &mut sctx, &self.frame);
            let done = sctx.vt + sctx.charged + sctx.charged_latency;
            Cmd::Complete {
                token: self.token,
                epoch: self.epoch,
                corr: self.corr,
                vt: done,
                frame: resp,
                held: sctx.take_held(),
            }
        } else {
            // Node died before the handler ran: close without response.
            Cmd::Close {
                token: self.token,
                epoch: self.epoch,
            }
        };
        self.injector.lock().push(cmd);
        let _ = self.poller.notify();
    }
}

/// Fixed worker threads draining a bounded queue. `try_submit` never
/// blocks — a full queue is the caller's signal to backpressure.
pub(crate) struct DispatchPool {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
    cap: usize,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl DispatchPool {
    fn start(threads: usize, cap: usize) -> Arc<DispatchPool> {
        let pool = Arc::new(DispatchPool {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap,
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = pool.workers.lock();
        for _ in 0..threads {
            let p = Arc::clone(&pool);
            workers.push(std::thread::spawn(move || p.work()));
        }
        drop(workers);
        pool
    }

    fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut q = self.q.lock();
        if q.len() >= self.cap {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Room in the queue right now (cheap pre-check for retries).
    fn has_room(&self) -> bool {
        self.q.lock().len() < self.cap
    }

    fn work(&self) {
        loop {
            let job = {
                let mut q = self.q.lock();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    self.cv.wait(&mut q);
                }
            };
            job.run();
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock());
        for h in workers {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

struct LoopEnv {
    poller: Arc<Poller>,
    injector: Arc<Mutex<Vec<Cmd>>>,
    pool: Arc<DispatchPool>,
    shared: Arc<Shared>,
    io_timeout: Option<Duration>,
    max_conn_inflight: usize,
    max_connections: usize,
}

enum Slot {
    Free,
    Listener(Lst),
    Conn(Box<Conn>),
}

struct Lst {
    listener: TcpListener,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    /// Dropped and re-opened to accept-then-shed under fd exhaustion.
    reserve: Option<File>,
    /// Interest parked until this instant after a failed shed cycle
    /// (prevents a level-triggered busy-spin on persistent EMFILE).
    paused_until: Option<Instant>,
}

enum OutBody {
    Chain(ByteChain),
    Flat(Vec<u8>),
}

impl OutBody {
    fn len(&self) -> usize {
        match self {
            OutBody::Chain(c) => c.len(),
            OutBody::Flat(v) => v.len(),
        }
    }
}

struct Outgoing {
    head: [u8; WIRE_HEAD],
    body: OutBody,
    /// Dropped when this response has been fully written (see
    /// [`Cmd::Complete::held`]) — the admission permit's release point.
    /// Never read; it exists for its `Drop`.
    _held: Vec<Box<dyn std::any::Any + Send>>,
}

struct Conn {
    stream: TcpStream,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    epoch: u64,
    // -- read accumulator (survives partial readiness) --
    head: [u8; ENVELOPE_LEN_BYTES],
    head_got: usize,
    body: Vec<u8>,
    body_got: usize,
    reading_body: bool,
    // -- write queue (partial-write resume) --
    out: VecDeque<Outgoing>,
    written: usize,
    // -- dispatch state --
    inflight: usize,
    /// One decoded-but-undispatched frame held under backpressure.
    pending: Option<(u64, u64, Frame)>,
    paused: bool,
    // -- bookkeeping --
    want_r: bool,
    want_w: bool,
    last_activity: Instant,
}

enum Verdict {
    Keep,
    Close,
}

fn run_loop(env: LoopEnv) {
    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_epoch: u64 = 1;
    let mut events: Vec<polling::Event> = Vec::new();
    let mut last_sweep = Instant::now();
    loop {
        events.clear();
        let _ = env.poller.wait(&mut events, Some(TICK));
        if env.shared.shutdown.load(Ordering::SeqCst) {
            teardown(&env, &mut slots);
            return;
        }
        let cmds: Vec<Cmd> = std::mem::take(&mut *env.injector.lock());
        for cmd in cmds {
            match cmd {
                Cmd::Listen {
                    listener,
                    svc,
                    alive,
                } => add_listener_slot(&env, &mut slots, &mut free, listener, svc, alive),
                Cmd::Complete {
                    token,
                    epoch,
                    corr,
                    vt,
                    frame,
                    held,
                } => complete(
                    &env, &mut slots, &mut free, token, epoch, corr, vt, frame, held,
                ),
                Cmd::Close { token, epoch } => {
                    if conn_epoch(&slots, token) == Some(epoch) {
                        close_conn(&env, &mut slots, &mut free, token);
                    }
                }
            }
        }
        let evs = std::mem::take(&mut events);
        for ev in &evs {
            dispatch_event(&env, &mut slots, &mut free, &mut next_epoch, ev);
        }
        events = evs;
        if last_sweep.elapsed() >= TICK {
            sweep(&env, &mut slots, &mut free, &mut next_epoch);
            last_sweep = Instant::now();
        }
    }
}

fn teardown(env: &LoopEnv, slots: &mut Vec<Slot>) {
    for slot in slots.drain(..) {
        match slot {
            Slot::Conn(conn) => {
                let _ = env.poller.delete(conn.stream.as_raw_fd());
                env.shared.conns.fetch_sub(1, Ordering::Relaxed);
            }
            Slot::Listener(lst) => {
                let _ = env.poller.delete(lst.listener.as_raw_fd());
            }
            Slot::Free => {}
        }
    }
}

fn alloc_slot(slots: &mut Vec<Slot>, free: &mut Vec<usize>, s: Slot) -> usize {
    if let Some(i) = free.pop() {
        slots[i] = s;
        i
    } else {
        slots.push(s);
        slots.len() - 1
    }
}

fn conn_epoch(slots: &[Slot], token: usize) -> Option<u64> {
    match slots.get(token) {
        Some(Slot::Conn(c)) => Some(c.epoch),
        _ => None,
    }
}

fn add_listener_slot(
    env: &LoopEnv,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
    listener: TcpListener,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let fd = listener.as_raw_fd();
    let token = alloc_slot(
        slots,
        free,
        Slot::Listener(Lst {
            listener,
            svc,
            alive,
            reserve: open_reserve_fd(),
            paused_until: None,
        }),
    );
    if env.poller.add(fd, token, true, false).is_err() {
        slots[token] = Slot::Free;
        free.push(token);
    }
}

fn close_conn(env: &LoopEnv, slots: &mut [Slot], free: &mut Vec<usize>, token: usize) {
    if let Slot::Conn(conn) = &slots[token] {
        let _ = env.poller.delete(conn.stream.as_raw_fd());
        env.shared.conns.fetch_sub(1, Ordering::Relaxed);
        slots[token] = Slot::Free;
        free.push(token);
    }
}

fn dispatch_event(
    env: &LoopEnv,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
    next_epoch: &mut u64,
    ev: &polling::Event,
) {
    let token = ev.key;
    match slots.get(token) {
        Some(Slot::Listener(_)) => accept_ready(env, slots, free, next_epoch, token),
        Some(Slot::Conn(_)) => {
            let verdict = {
                let Slot::Conn(conn) = &mut slots[token] else {
                    // lint: allow(panic-on-serving-path) — the outer match just
                    // proved this slot is a Conn; nothing reindexes in between
                    unreachable!()
                };
                conn_event(env, conn, token, ev.readable, ev.writable)
            };
            finish_conn_event(env, slots, free, token, verdict);
        }
        _ => {}
    }
}

fn finish_conn_event(
    env: &LoopEnv,
    slots: &mut [Slot],
    free: &mut Vec<usize>,
    token: usize,
    verdict: Verdict,
) {
    match verdict {
        Verdict::Close => close_conn(env, slots, free, token),
        Verdict::Keep => {
            let ok = {
                let Slot::Conn(conn) = &mut slots[token] else {
                    return;
                };
                update_interest(env, conn, token)
            };
            if !ok {
                close_conn(env, slots, free, token);
            }
        }
    }
}

/// Re-register the connection's interest when it changed: read unless
/// backpressured, write while the out-queue is nonempty.
fn update_interest(env: &LoopEnv, conn: &mut Conn, token: usize) -> bool {
    let want_r = !conn.paused;
    let want_w = !conn.out.is_empty();
    if (want_r, want_w) == (conn.want_r, conn.want_w) {
        return true;
    }
    if env
        .poller
        .modify(conn.stream.as_raw_fd(), token, want_r, want_w)
        .is_err()
    {
        return false;
    }
    conn.want_r = want_r;
    conn.want_w = want_w;
    true
}

fn conn_event(
    env: &LoopEnv,
    conn: &mut Conn,
    token: usize,
    readable: bool,
    writable: bool,
) -> Verdict {
    if writable {
        if let Verdict::Close = flush_conn(conn) {
            return Verdict::Close;
        }
    }
    if readable {
        if let Verdict::Close = read_conn(env, conn, token) {
            return Verdict::Close;
        }
    }
    Verdict::Keep
}

/// Drain the out-queue as far as the socket allows, resuming the front
/// message from its byte cursor by rebuilding and advancing the gather
/// slices (no payload copies).
fn flush_conn(conn: &mut Conn) -> Verdict {
    loop {
        if conn.out.is_empty() {
            return Verdict::Keep;
        }
        let written = conn.written;
        let res = {
            let front = &conn.out[0];
            let mut slices = match &front.body {
                OutBody::Chain(c) => c.as_io_slices(&front.head),
                OutBody::Flat(v) if v.is_empty() => vec![IoSlice::new(&front.head)],
                OutBody::Flat(v) => vec![IoSlice::new(&front.head), IoSlice::new(v)],
            };
            let mut rest: &mut [IoSlice<'_>] = &mut slices;
            IoSlice::advance_slices(&mut rest, written);
            (&conn.stream).write_vectored(rest)
        };
        match res {
            Ok(0) => return Verdict::Close,
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
                let total = WIRE_HEAD + conn.out[0].body.len();
                if conn.written >= total {
                    conn.out.pop_front();
                    conn.written = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(_) => return Verdict::Close,
        }
    }
}

/// Read until the socket runs dry or backpressure parks the
/// connection, accumulating at most one partial frame across calls.
fn read_conn(env: &LoopEnv, conn: &mut Conn, token: usize) -> Verdict {
    loop {
        if conn.paused {
            return Verdict::Keep;
        }
        if !conn.reading_body {
            while conn.head_got < ENVELOPE_LEN_BYTES {
                match (&conn.stream).read(&mut conn.head[conn.head_got..]) {
                    // EOF: clean at a frame boundary, abrupt otherwise —
                    // either way the conversation is over.
                    Ok(0) => return Verdict::Close,
                    Ok(n) => {
                        conn.head_got += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
                    Err(_) => return Verdict::Close,
                }
            }
            // Validate the peer-controlled length in the u64 domain,
            // then narrow with a checked conversion — never a cast.
            let declared = u64::from(u32::from_le_bytes(conn.head));
            if declared < ENVELOPE_FIXED as u64 || declared > MAX_WIRE_FRAME {
                // Hostile or corrupt length: close before allocating.
                return Verdict::Close;
            }
            let Ok(len) = usize::try_from(declared) else {
                return Verdict::Close;
            };
            conn.body = vec![0u8; len];
            conn.body_got = 0;
            conn.reading_body = true;
        }
        while conn.body_got < conn.body.len() {
            match (&conn.stream).read(&mut conn.body[conn.body_got..]) {
                Ok(0) => return Verdict::Close,
                Ok(n) => {
                    conn.body_got += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
                Err(_) => return Verdict::Close,
            }
        }
        // Frame complete: decode (lend-on-decode) and dispatch.
        conn.reading_body = false;
        conn.head_got = 0;
        let body = std::mem::take(&mut conn.body);
        let Ok((corr, vt, frame)) = super::decode_wire_body(body) else {
            return Verdict::Close;
        };
        if !conn.alive.load(Ordering::Acquire) {
            return Verdict::Close;
        }
        submit_or_stash(env, conn, token, corr, vt, frame);
    }
}

/// Hand a decoded frame to the dispatch pool, or park it (and the
/// connection's reads) when the connection's in-flight budget or the
/// pool queue is full.
fn submit_or_stash(env: &LoopEnv, conn: &mut Conn, token: usize, corr: u64, vt: u64, frame: Frame) {
    if conn.inflight >= env.max_conn_inflight {
        conn.pending = Some((corr, vt, frame));
        conn.paused = true;
        return;
    }
    let job = Job {
        svc: Arc::clone(&conn.svc),
        alive: Arc::clone(&conn.alive),
        token,
        epoch: conn.epoch,
        corr,
        vt,
        frame,
        injector: Arc::clone(&env.injector),
        poller: Arc::clone(&env.poller),
    };
    match env.pool.try_submit(job) {
        Ok(()) => conn.inflight += 1,
        Err(job) => {
            conn.pending = Some((job.corr, job.vt, job.frame));
            conn.paused = true;
        }
    }
}

/// Try to dispatch a parked frame; unpauses the connection on success.
fn retry_pending(env: &LoopEnv, conn: &mut Conn, token: usize) {
    if !conn.paused || conn.inflight >= env.max_conn_inflight || !env.pool.has_room() {
        return;
    }
    if let Some((corr, vt, frame)) = conn.pending.take() {
        conn.paused = false;
        submit_or_stash(env, conn, token, corr, vt, frame);
    }
}

/// A handler finished: queue its response on the owning connection (if
/// the epoch still matches) and push bytes out opportunistically.
#[allow(clippy::too_many_arguments)]
fn complete(
    env: &LoopEnv,
    slots: &mut [Slot],
    free: &mut Vec<usize>,
    token: usize,
    epoch: u64,
    corr: u64,
    vt: u64,
    frame: Frame,
    held: Vec<Box<dyn std::any::Any + Send>>,
) {
    let verdict = {
        let Some(Slot::Conn(conn)) = slots.get_mut(token) else {
            return;
        };
        if conn.epoch != epoch {
            return;
        }
        conn.inflight = conn.inflight.saturating_sub(1);
        if !conn.alive.load(Ordering::Acquire) {
            // Died during the call: close without a response.
            Verdict::Close
        } else if frame.body.len() as u64 > MAX_FRAME_BODY {
            Verdict::Close
        } else {
            let head = encode_head(corr, vt, frame.method, frame.body.len());
            let body = if env.shared.gather.load(Ordering::Relaxed) {
                OutBody::Chain(frame.body)
            } else {
                // lint: allow(unmetered-copy) — the ablated flatten; Chain::to_vec records it
                OutBody::Flat(frame.body.to_vec())
            };
            conn.out.push_back(Outgoing {
                head,
                body,
                _held: held,
            });
            let v = flush_conn(conn);
            if matches!(v, Verdict::Keep) {
                retry_pending(env, conn, token);
            }
            v
        }
    };
    finish_conn_event(env, slots, free, token, verdict);
}

/// Accept every waiting connection on a readable listener; apply the
/// connection cap and the fd-exhaustion shed protocol.
fn accept_ready(
    env: &LoopEnv,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
    next_epoch: &mut u64,
    token: usize,
) {
    let mut fresh: Vec<TcpStream> = Vec::new();
    {
        let Slot::Listener(lst) = &mut slots[token] else {
            return;
        };
        if lst.paused_until.is_some_and(|t| t > Instant::now()) {
            return;
        }
        loop {
            match lst.listener.accept() {
                Ok((stream, _)) => {
                    if env.shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if env.max_connections > 0
                        && env.shared.conns.load(Ordering::Relaxed) + fresh.len()
                            >= env.max_connections
                    {
                        shed_connection(stream, &env.shared);
                        continue;
                    }
                    fresh.push(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_fd_exhaustion(&e) => {
                    // Free the reserve fd, accept the waiting connection,
                    // shed it with a typed close, re-arm the reserve.
                    lst.reserve = None;
                    let shed = match lst.listener.accept() {
                        Ok((stream, _)) => {
                            shed_connection(stream, &env.shared);
                            true
                        }
                        Err(_) => false,
                    };
                    lst.reserve = open_reserve_fd();
                    if !shed || lst.reserve.is_none() {
                        // Could not even shed: park the listener briefly
                        // so a level-triggered poller does not spin.
                        lst.paused_until = Some(Instant::now() + TICK);
                        let _ = env
                            .poller
                            .modify(lst.listener.as_raw_fd(), token, false, false);
                        break;
                    }
                }
                Err(_) => {
                    // Transient (ECONNABORTED and friends): park briefly
                    // rather than risk spinning on a persistent error.
                    lst.paused_until = Some(Instant::now() + TICK);
                    let _ = env
                        .poller
                        .modify(lst.listener.as_raw_fd(), token, false, false);
                    break;
                }
            }
        }
    }
    let (svc, alive) = {
        let Slot::Listener(lst) = &slots[token] else {
            return;
        };
        (Arc::clone(&lst.svc), Arc::clone(&lst.alive))
    };
    for stream in fresh {
        install_conn(
            env,
            slots,
            free,
            next_epoch,
            stream,
            Arc::clone(&svc),
            Arc::clone(&alive),
        );
    }
}

fn install_conn(
    env: &LoopEnv,
    slots: &mut Vec<Slot>,
    free: &mut Vec<usize>,
    next_epoch: &mut u64,
    stream: TcpStream,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let fd = stream.as_raw_fd();
    let epoch = *next_epoch;
    *next_epoch += 1;
    let conn = Box::new(Conn {
        stream,
        svc,
        alive,
        epoch,
        head: [0u8; ENVELOPE_LEN_BYTES],
        head_got: 0,
        body: Vec::new(),
        body_got: 0,
        reading_body: false,
        out: VecDeque::new(),
        written: 0,
        inflight: 0,
        pending: None,
        paused: false,
        want_r: true,
        want_w: false,
        last_activity: Instant::now(),
    });
    let token = alloc_slot(slots, free, Slot::Conn(conn));
    if env.poller.add(fd, token, true, false).is_err() {
        slots[token] = Slot::Free;
        free.push(token);
        return;
    }
    env.shared.conns.fetch_add(1, Ordering::Relaxed);
}

/// Periodic pass: re-arm parked listeners, retry parked dispatches, and
/// time out connections stalled mid-frame or not draining responses.
/// Connections idle at a frame boundary (and slow handlers that have
/// not produced output yet) are exempt — idleness is not a fault.
fn sweep(env: &LoopEnv, slots: &mut Vec<Slot>, free: &mut Vec<usize>, next_epoch: &mut u64) {
    let now = Instant::now();
    for token in 0..slots.len() {
        match &mut slots[token] {
            Slot::Listener(lst) => {
                if lst.paused_until.is_some_and(|t| t <= now) {
                    lst.paused_until = None;
                    let _ = env
                        .poller
                        .modify(lst.listener.as_raw_fd(), token, true, false);
                    accept_ready(env, slots, free, next_epoch, token);
                }
            }
            Slot::Conn(conn) => {
                let was_paused = conn.paused;
                retry_pending(env, conn, token);
                let stalled = if let Some(t) = env.io_timeout {
                    let mid_read = conn.head_got > 0 || conn.reading_body;
                    let undrained = !conn.out.is_empty();
                    (mid_read || undrained) && !conn.paused && conn.last_activity.elapsed() > t
                } else {
                    false
                };
                if stalled {
                    close_conn(env, slots, free, token);
                } else if was_paused != conn.paused {
                    let ok = update_interest(env, conn, token);
                    if !ok {
                        close_conn(env, slots, free, token);
                    }
                }
            }
            Slot::Free => {}
        }
    }
}
