//! Multiplexed client connections.
//!
//! One [`MuxConn`] carries any number of in-flight calls: each call
//! claims a fresh correlation id, registers a [`CallSlot`], writes its
//! frame under the send lock (gather-write, serialized so frames never
//! interleave), and parks on the slot. A dedicated reader thread per
//! connection decodes responses — in whatever order the server finishes
//! them — and routes each to its slot by correlation id.
//!
//! Failure is total per connection: the first read error, codec error,
//! stray correlation id, or [`CTRL_SHED`] control frame marks the
//! connection dead, removes it from the transport's pool, and resolves
//! **every** registered slot with the typed error — a connection error
//! fails every call in flight on it, never hangs one. The `dead` flag
//! lives inside the same mutex as the in-flight map, so a call can
//! never register a slot the reader will not see.

use super::{
    is_timeout, recv_frame, send_frame, RecvError, SendError, Shared, TcpOptions, CTRL_CORR,
    CTRL_SHED,
};
use crate::frame::Frame;
use blobseer_proto::{BlobError, CodecError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `(response vt, response frame, response wire bytes)`.
type CallOutcome = Result<(u64, Frame, usize), BlobError>;

/// A one-shot completion slot the calling thread parks on.
pub(crate) struct CallSlot {
    done: Mutex<Option<CallOutcome>>,
    cv: Condvar,
}

impl CallSlot {
    fn new() -> Self {
        Self {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, outcome: CallOutcome) {
        *self.done.lock() = Some(outcome);
        self.cv.notify_all();
    }

    /// Park until the reader resolves this slot. The reader guarantees
    /// resolution: every exit path fails all registered slots first.
    pub(crate) fn wait(&self) -> CallOutcome {
        let mut g = self.done.lock();
        loop {
            if let Some(outcome) = g.take() {
                return outcome;
            }
            self.cv.wait(&mut g);
        }
    }
}

struct ConnState {
    /// Set exactly once, under this mutex, before the in-flight map is
    /// drained — registration checks it under the same lock.
    dead: Option<BlobError>,
    inflight: HashMap<u64, Pending>,
}

struct Pending {
    slot: Arc<CallSlot>,
    registered: Instant,
}

type MuxMap = Arc<Mutex<HashMap<u32, Vec<Arc<MuxConn>>>>>;

/// One multiplexed connection to a destination node.
pub(crate) struct MuxConn {
    stream: TcpStream,
    /// Serializes whole-frame writes so concurrent calls never
    /// interleave their bytes.
    send: Mutex<()>,
    state: Mutex<ConnState>,
    next_corr: AtomicU64,
    reader: Mutex<Option<JoinHandle<()>>>,
    io_timeout: Option<Duration>,
    /// The transport's pool this connection lives in, so both death
    /// paths (reader exit, send-side I/O failure) can evict it before
    /// any caller observes the error.
    map: MuxMap,
    key: u32,
}

impl MuxConn {
    /// Dial `addr` and start the connection's reader thread.
    pub(crate) fn connect(
        addr: SocketAddr,
        opts: &TcpOptions,
        map: MuxMap,
        key: u32,
        shared: Arc<Shared>,
    ) -> Result<Arc<MuxConn>, BlobError> {
        let stream = TcpStream::connect_timeout(&addr, opts.connect_timeout)
            // lint: allow(overload-erasure) — io::Error source, a connect failure
            // cannot carry Overload
            .map_err(|_| BlobError::Unreachable("tcp connect failed"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(opts.io_timeout);
        let _ = stream.set_write_timeout(opts.io_timeout);
        let conn = Arc::new(MuxConn {
            stream,
            send: Mutex::new(()),
            state: Mutex::new(ConnState {
                dead: None,
                inflight: HashMap::new(),
            }),
            // Correlation ids start at 1: 0 is the control channel.
            next_corr: AtomicU64::new(CTRL_CORR + 1),
            reader: Mutex::new(None),
            io_timeout: opts.io_timeout,
            map,
            key,
        });
        let rc = Arc::clone(&conn);
        let handle = std::thread::spawn(move || {
            let err = read_loop(&rc, &shared);
            die(&rc, err);
        });
        *conn.reader.lock() = Some(handle);
        Ok(conn)
    }

    /// Whether the reader has declared this connection dead.
    pub(crate) fn is_dead(&self) -> bool {
        self.state.lock().dead.is_some()
    }

    /// Calls currently in flight (load metric for least-loaded pick).
    pub(crate) fn inflight(&self) -> usize {
        self.state.lock().inflight.len()
    }

    /// Claim a correlation id and register a completion slot. Fails
    /// with the connection's death error if the reader already exited
    /// (the caller retries on a fresh connection).
    pub(crate) fn register(&self) -> Result<(u64, Arc<CallSlot>), BlobError> {
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(CallSlot::new());
        let mut st = self.state.lock();
        if let Some(e) = &st.dead {
            return Err(e.clone());
        }
        st.inflight.insert(
            corr,
            Pending {
                slot: Arc::clone(&slot),
                registered: Instant::now(),
            },
        );
        Ok((corr, slot))
    }

    /// Write one call frame under the send lock. A pre-write codec
    /// error leaves the connection usable; an I/O error mid-write has
    /// corrupted the stream, so the connection is killed (failing every
    /// other call in flight too). Returns the request's wire size.
    pub(crate) fn send(
        &self,
        corr: u64,
        vt: u64,
        frame: &Frame,
        gather: bool,
    ) -> Result<usize, BlobError> {
        let res = {
            let _g = self.send.lock();
            send_frame(&mut &self.stream, corr, vt, frame, gather)
        };
        match res {
            Ok(n) => Ok(n),
            Err(SendError::Codec(c)) => {
                // Nothing hit the wire: deregister and keep the conn.
                self.state.lock().inflight.remove(&corr);
                Err(BlobError::Codec(c))
            }
            Err(SendError::Io(e)) => {
                let err = if is_timeout(&e) {
                    BlobError::Unreachable("tcp send timed out")
                } else {
                    BlobError::Unreachable("tcp send failed")
                };
                // The stream is corrupt for everyone: deregister our own
                // slot, then kill the connection *synchronously* — the
                // pool must be clean before the caller sees the error
                // (the reader's own death path is idempotent and will
                // follow once the shutdown EOFs it).
                self.state.lock().inflight.remove(&corr);
                die(self, err.clone());
                Err(err)
            }
        }
    }

    /// Shut the socket down so the reader exits (transport teardown).
    pub(crate) fn close(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Join the reader thread (after [`MuxConn::close`]).
    pub(crate) fn join_reader(&self) {
        if let Some(handle) = self.reader.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Decode responses until the connection fails; returns the typed error
/// every remaining in-flight call resolves with.
fn read_loop(conn: &Arc<MuxConn>, shared: &Shared) -> BlobError {
    loop {
        match recv_frame(&mut &conn.stream) {
            Ok((corr, vt, frame, wire)) => {
                if corr == CTRL_CORR {
                    if frame.method == CTRL_SHED {
                        // A typed admission shed, not a dead peer: the
                        // server is alive and chose to reject. The
                        // envelope's vt field carries its retry hint.
                        return BlobError::Overload {
                            retry_after_hint: vt,
                        };
                    }
                    // Unknown control frame: the stream cannot be trusted.
                    return BlobError::Codec(CodecError::StrayCorrelation { corr });
                }
                match conn.state.lock().inflight.remove(&corr) {
                    Some(p) => p.slot.resolve(Ok((vt, frame, wire))),
                    None => {
                        // A response nothing asked for: framing is broken.
                        return BlobError::Codec(CodecError::StrayCorrelation { corr });
                    }
                }
            }
            Err(RecvError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return BlobError::Unreachable("tcp connection lost");
                }
                // Timeout with no envelope byte: idle between calls —
                // unless calls are waiting and the oldest has waited a
                // full window (the read may have been armed long before
                // that call registered; re-arm instead of failing it
                // early).
                let oldest = conn
                    .state
                    .lock()
                    .inflight
                    .values()
                    .map(|p| p.registered)
                    .min();
                let Some(oldest) = oldest else { continue };
                let window = conn.io_timeout.unwrap_or(Duration::MAX);
                if oldest.elapsed() >= window {
                    return BlobError::Unreachable("tcp recv timed out");
                }
            }
            Err(RecvError::Codec(c)) => return BlobError::Codec(c),
            Err(RecvError::Io(e)) if is_timeout(&e) => {
                // Stalled mid-frame: the stream is wedged for everyone.
                return BlobError::Unreachable("tcp recv timed out");
            }
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => {
                // lint: allow(overload-erasure) — RecvError is pure I/O; a shed
                // arrives as a decoded Overload response frame, not here
                return BlobError::Unreachable("tcp connection lost");
            }
        }
    }
}

/// Kill a connection: remove it from the transport's pool *first* (so
/// no new call can pick it, and a caller returning an error never
/// observes it still pooled), then mark it dead and fail every
/// registered slot. Idempotent — the send path and the reader's exit
/// both funnel here.
fn die(conn: &MuxConn, err: BlobError) {
    {
        let mut m = conn.map.lock();
        if let Some(pool) = m.get_mut(&conn.key) {
            pool.retain(|c| !std::ptr::eq(Arc::as_ptr(c), conn));
            if pool.is_empty() {
                m.remove(&conn.key);
            }
        }
    }
    let _ = conn.stream.shutdown(Shutdown::Both);
    let drained: Vec<Pending> = {
        let mut st = conn.state.lock();
        if st.dead.is_some() {
            return;
        }
        st.dead = Some(err.clone());
        st.inflight.drain().map(|(_, p)| p).collect()
    };
    for p in drained {
        p.slot.resolve(Err(err.clone()));
    }
}
