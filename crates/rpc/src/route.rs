//! Static key-based routing across a set of peer service nodes.
//!
//! PR 10 shards the version manager by blob id: shard `s` of `S` owns
//! exactly the blob ids congruent to `s` modulo `S`, so a client can
//! route any request with one modulo and **no directory service** — the
//! same directoryless discipline the DHT ring gives the data plane,
//! specialized to the residue-class id allocation the sharded
//! `VersionRegistry` performs. The router is immutable after
//! construction: routing is a pure function of the key, so it can be
//! shared freely across client threads without any synchronization.

use blobseer_proto::NodeId;

/// Routes keys to one of a fixed set of shard nodes by residue class.
///
/// Shard membership never changes after construction (a deployment
/// spawns its version-manager shards once), so lookups are lock-free
/// array indexing.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    nodes: Vec<NodeId>,
}

impl ShardRouter {
    /// A router over `nodes`, where `nodes[s]` serves residue class `s`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty — a router with nothing to route to is
    /// a deployment bug, not a runtime condition.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "ShardRouter needs at least one node");
        Self { nodes }
    }

    /// The node owning `key` (`key % shards`).
    pub fn route(&self, key: u64) -> NodeId {
        self.nodes[(key % self.shards() as u64) as usize]
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// All shard nodes, in residue order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The `n`-th node round-robin — for key-less requests (e.g. blob
    /// creation, where *any* shard may allocate) spread by an external
    /// counter.
    pub fn round_robin(&self, n: u64) -> NodeId {
        self.nodes[(n % self.shards() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_residue_class() {
        let r = ShardRouter::new(vec![NodeId(10), NodeId(11), NodeId(12)]);
        assert_eq!(r.shards(), 3);
        assert_eq!(r.route(0), NodeId(10));
        assert_eq!(r.route(1), NodeId(11));
        assert_eq!(r.route(2), NodeId(12));
        assert_eq!(r.route(3), NodeId(10));
        assert_eq!(r.route(7), NodeId(11));
    }

    #[test]
    fn single_node_routes_everything_to_it() {
        let r = ShardRouter::new(vec![NodeId(5)]);
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(r.route(key), NodeId(5));
        }
    }

    #[test]
    fn round_robin_cycles() {
        let r = ShardRouter::new(vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.round_robin(0), NodeId(1));
        assert_eq!(r.round_robin(1), NodeId(2));
        assert_eq!(r.round_robin(2), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_router_is_a_bug() {
        let _ = ShardRouter::new(Vec::new());
    }
}
