//! Real TCP transport: an event-driven reactor server and multiplexed
//! client connections, designed for C10K-scale populations.
//!
//! The first version of this transport (PR 3) spawned one OS thread per
//! live connection and checked one pooled socket out per in-flight call
//! — correct, but the thread and fd populations grew linearly with the
//! client count, collapsing the transport long before the data path
//! does. This version serves every connection from a **fixed thread
//! count** and carries many in-flight calls on **one** socket:
//!
//! * **Server = reactor.** [`TcpOptions::event_loops`] nonblocking
//!   event loops (an `epoll(7)` readiness loop on Linux via the local
//!   `polling` shim, `poll(2)` elsewhere on unix) own every accepted
//!   connection, and a bounded dispatch pool of
//!   [`TcpOptions::dispatch_threads`] workers runs the [`Service`]
//!   handlers — a slow handler occupies a pool slot, never an event
//!   loop. When the pool or a connection's in-flight budget is full the
//!   connection's read interest is parked (backpressure), not buffered
//!   without bound. Off-unix (or if the poller cannot start) the
//!   transport falls back to thread-per-connection serving.
//! * **Client = multiplexing.** Each destination keeps a small set of
//!   connections (at most [`TcpOptions::max_pooled_per_peer`]); a call
//!   picks the least-loaded live one and registers a per-call
//!   completion slot under a fresh **correlation id**. One reader
//!   thread per connection routes responses to their slots, so any
//!   number of calls share a socket concurrently. A connection error
//!   fails *every* call in flight on it — typed
//!   [`BlobError::Unreachable`], never a hang.
//! * **Ablation.** [`ServerMode::ThreadPerConn`] keeps the PR 3 regime
//!   (accept thread + thread per connection) alive for benchmarks; the
//!   client side is multiplexed in both modes and both speak the same
//!   wire format. `bench/pr6_reactor` sweeps the two regimes against
//!   each other.
//!
//! # Wire envelope (v2)
//!
//! ```text
//! [len u32][corr u64][vt u64][method u16][body_len u32][body ...]
//!  0     4         12       20         22            26
//! ```
//!
//! `len` counts everything after itself (`corr` through body, the
//! 22-byte fixed part + body). The **correlation id** is echoed verbatim
//! by the server so responses can arrive out of order; id `0`
//! ([`CTRL_CORR`]) is reserved for connection-control frames — today
//! only [`CTRL_SHED`], sent when a server sheds a connection under fd
//! pressure (see below). Everything else about the frame discipline is
//! unchanged from PR 3 and survives partial readiness:
//!
//! * **Send is gather-write.** A frame leaves as the 26-byte envelope
//!   followed by the body's [`ByteChain`](blobseer_proto::wire::ByteChain)
//!   segments via `write_vectored` — no flattening memcpy. Partial
//!   writes resume from a per-connection `written` cursor over the same
//!   slice list. The seed behaviour (flatten into one contiguous
//!   buffer, a metered copy) survives as
//!   [`TcpTransport::set_gather_write`]`(false)`.
//! * **Receive is lend-on-decode.** Each inbound frame accumulates into
//!   a single buffer across however many readiness events it takes,
//!   then decodes with [`Reader::from_buf`] so page payloads come out
//!   as refcounted slices of the receive buffer.
//! * **Corrupt bytes are errors, never panics.** Envelope and body
//!   length prefixes are capped ([`MAX_WIRE_FRAME`] /
//!   [`crate::frame::MAX_FRAME_BODY`]) before any allocation.
//!
//! # Overload and fd exhaustion
//!
//! Accepting under `EMFILE`/`ENFILE` sheds the **newest** connection
//! with a typed close instead of sleep-looping: each listener holds one
//! reserve fd (`/dev/null`); on fd exhaustion it drops the reserve,
//! accepts the waiting connection, writes it a [`CTRL_SHED`] control
//! frame, closes it, and re-opens the reserve. Clients surface a shed
//! as [`BlobError::Unreachable`] on every call in flight — established
//! connections are never sacrificed for new ones.
//! [`TcpOptions::max_connections`] applies the same shed path at a
//! deterministic threshold (fault tests use this).
//!
//! # Error taxonomy
//!
//! | failure                                   | surfaced as                 |
//! |-------------------------------------------|-----------------------------|
//! | connect refused / timeout                 | [`BlobError::Unreachable`]  |
//! | peer closed mid-frame, short read/write   | [`BlobError::Unreachable`]  |
//! | I/O timeout (peer accepted, never replied)| [`BlobError::Unreachable`]  |
//! | connection shed by the server             | [`BlobError::Unreachable`]  |
//! | corrupt envelope or frame bytes           | [`BlobError::Codec`]        |
//! | body above the frame cap (send or recv)   | [`BlobError::Codec`]        |
//! | response with an unknown correlation id   | [`BlobError::Codec`]        |
//!
//! A connection that fails (including a stray correlation id — the
//! stream framing can no longer be trusted) is dropped, all its
//! in-flight calls resolve with the typed error, and the next call
//! reconnects. Virtual time still flows (the envelope carries `vt` and
//! handlers may charge), but wall-clock time is real — TCP deployments
//! use zero-cost models and measure with real clocks.

use crate::frame::{Frame, MAX_FRAME_BODY};
use crate::service::{dispatch_frame, ServerCtx, Service};
use blobseer_proto::wire::{Reader, Wire};
use blobseer_proto::{BlobError, CodecError, NodeId, PageBuf};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::transport::{Transport, TransportResult};

mod mux;
#[cfg(unix)]
mod reactor;

use mux::MuxConn;

/// Envelope length-prefix bytes.
pub(crate) const ENVELOPE_LEN_BYTES: usize = 4;
/// Bytes covered by the envelope length besides the frame body:
/// correlation id (8) + virtual time (8) + method (2) + body length (4).
pub(crate) const ENVELOPE_FIXED: usize = 8 + 8 + 2 + 4;
/// Whole wire head: length prefix + fixed envelope.
pub(crate) const WIRE_HEAD: usize = ENVELOPE_LEN_BYTES + ENVELOPE_FIXED;

/// Sanity cap on one whole wire frame (envelope fixed part + body):
/// anything larger is rejected before allocation, on both sides.
pub const MAX_WIRE_FRAME: u64 = MAX_FRAME_BODY + ENVELOPE_FIXED as u64;

/// Correlation id reserved for connection-control frames; never
/// assigned to a call.
pub const CTRL_CORR: u64 = 0;
/// Control method: the server is shedding this connection (fd
/// exhaustion or the [`TcpOptions::max_connections`] cap). Sent with
/// [`CTRL_CORR`] and an empty body; the envelope's `vt` field carries
/// the retry-after hint in milliseconds (envelope-compatible — old
/// peers sent 0 there). Clients surface it as [`BlobError::Overload`].
pub const CTRL_SHED: u16 = 0xFF01;

/// Retry-after hint (milliseconds) carried in the `vt` field of a
/// connection-level [`CTRL_SHED`] frame. Dispatch-level admission sheds
/// compute a hint from queue occupancy instead; this constant covers
/// the cruder connection-slot shed where no queue exists to inspect.
pub const SHED_RETRY_HINT_MS: u64 = 20;

/// How the server side of a [`TcpTransport`] serves connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Nonblocking event loops + a bounded dispatch pool (default).
    /// Requires unix; falls back to [`ServerMode::ThreadPerConn`] when
    /// the readiness poller cannot start.
    Reactor,
    /// The PR 3 regime: an accept thread per listener and one worker
    /// thread per live connection. Kept as the bench ablation.
    ThreadPerConn,
}

/// Tunables for a [`TcpTransport`].
#[derive(Clone, Copy, Debug)]
pub struct TcpOptions {
    /// Client-side connect timeout.
    pub connect_timeout: Duration,
    /// Per-read/per-write timeout (`None` = block forever). Bounds how
    /// long a call can hang on a peer that accepted the connection but
    /// never answers, and how long the server keeps a connection that
    /// stalled mid-frame or stopped draining responses.
    pub io_timeout: Option<Duration>,
    /// Maximum multiplexed connections per destination. A call prefers
    /// an existing idle connection and only dials another when every
    /// one is busy and the count is below this.
    pub max_pooled_per_peer: usize,
    /// Server serving regime (reactor vs thread-per-connection).
    pub server_mode: ServerMode,
    /// Event loops the reactor runs (≥ 1).
    pub event_loops: usize,
    /// Dispatch-pool workers running service handlers (≥ 1).
    pub dispatch_threads: usize,
    /// Dispatch-queue depth; past it connections are backpressured by
    /// parking their read interest.
    pub dispatch_queue: usize,
    /// In-flight dispatches one connection may occupy before its reads
    /// are parked (fairness under multiplexed clients).
    pub max_conn_inflight: usize,
    /// Established-connection cap per transport; `0` = unlimited.
    /// Accepts past it are shed with a typed [`CTRL_SHED`] close.
    pub max_connections: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            max_pooled_per_peer: 64,
            server_mode: ServerMode::Reactor,
            event_loops: 2,
            dispatch_threads: 4,
            dispatch_queue: 1024,
            max_conn_inflight: 64,
            max_connections: 0,
        }
    }
}

/// State shared with server threads and client readers (no
/// back-reference to the transport, so dropping the transport tears the
/// threads down).
pub(crate) struct Shared {
    pub shutdown: AtomicBool,
    pub gather: AtomicBool,
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    /// Established server-side connections currently held.
    pub conns: AtomicUsize,
    /// Connections shed under fd pressure or the connection cap.
    pub sheds: AtomicU64,
    pub io_timeout: Option<Duration>,
}

struct NodeSlot {
    addr: Option<SocketAddr>,
    alive: Arc<AtomicBool>,
}

enum ServerEngine {
    Idle,
    Threads(Vec<(SocketAddr, JoinHandle<()>)>),
    #[cfg(unix)]
    Reactor(reactor::Reactor),
}

/// A real socket transport over loopback (or any reachable address via
/// [`TcpTransport::register_remote`]). See the module docs for the
/// reactor model, wire envelope and error taxonomy.
pub struct TcpTransport {
    opts: TcpOptions,
    nodes: RwLock<Vec<NodeSlot>>,
    mux: Arc<Mutex<HashMap<u32, Vec<Arc<MuxConn>>>>>,
    server: Mutex<ServerEngine>,
    shared: Arc<Shared>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Empty transport with default options.
    pub fn new() -> Self {
        Self::with_options(TcpOptions::default())
    }

    /// Empty transport with explicit options.
    pub fn with_options(opts: TcpOptions) -> Self {
        Self {
            opts,
            nodes: RwLock::new(Vec::new()),
            mux: Arc::new(Mutex::new(HashMap::new())),
            server: Mutex::new(ServerEngine::Idle),
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                gather: AtomicBool::new(true),
                messages: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                conns: AtomicUsize::new(0),
                sheds: AtomicU64::new(0),
                io_timeout: opts.io_timeout,
            }),
        }
    }

    /// Add a node (returns its id). Client-only nodes never bind a
    /// listener; calls *to* them fail until [`TcpTransport::bind`].
    pub fn add_node(&self) -> NodeId {
        let mut g = self.nodes.write();
        g.push(NodeSlot {
            addr: None,
            alive: Arc::new(AtomicBool::new(true)),
        });
        // lint: allow(truncating-cast) — node registry is deployment-scale
        // (hundreds of slots), nowhere near u32::MAX
        NodeId(g.len() as u32 - 1)
    }

    /// Bind a service to a node: starts a loopback listener served by
    /// the transport's engine (reactor loops or an accept thread,
    /// depending on [`TcpOptions::server_mode`]). Panics if the node is
    /// unknown or already bound.
    pub fn bind(&self, node: NodeId, svc: Arc<dyn Service>) {
        // lint: allow(panic-on-serving-path) — bind-time setup, documented to panic
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
        // lint: allow(panic-on-serving-path) — bind-time setup, documented to panic
        let addr = listener.local_addr().expect("listener local addr");
        let alive = {
            let mut g = self.nodes.write();
            // lint: allow(panic-on-serving-path) — bind-time setup, documented to panic
            let slot = g.get_mut(node.0 as usize).expect("bind: node exists");
            assert!(slot.addr.is_none(), "bind: node already has a service");
            slot.addr = Some(addr);
            Arc::clone(&slot.alive)
        };
        let mut engine = self.server.lock();
        if matches!(*engine, ServerEngine::Idle) {
            *engine = self.start_engine();
        }
        match &mut *engine {
            #[cfg(unix)]
            ServerEngine::Reactor(r) => r.add_listener(listener, svc, alive),
            ServerEngine::Threads(accepts) => {
                let shared = Arc::clone(&self.shared);
                let opts = self.opts;
                let handle =
                    std::thread::spawn(move || accept_loop(listener, svc, alive, shared, opts));
                accepts.push((addr, handle));
            }
            // lint: allow(panic-on-serving-path) — the Idle arm was replaced by
            // start_engine two lines up; this arm cannot be reached
            ServerEngine::Idle => unreachable!("engine started above"),
        }
    }

    fn start_engine(&self) -> ServerEngine {
        #[cfg(unix)]
        if self.opts.server_mode == ServerMode::Reactor {
            match reactor::Reactor::start(&self.opts, Arc::clone(&self.shared)) {
                Ok(r) => return ServerEngine::Reactor(r),
                Err(_) => {
                    // No readiness poller available: degrade to the
                    // thread-per-connection regime.
                }
            }
        }
        ServerEngine::Threads(Vec::new())
    }

    /// The serving regime actually in effect (the reactor may have
    /// fallen back to threads if no poller was available). Meaningful
    /// once a service is bound.
    pub fn server_mode(&self) -> ServerMode {
        match *self.server.lock() {
            #[cfg(unix)]
            ServerEngine::Reactor(_) => ServerMode::Reactor,
            ServerEngine::Threads(_) => ServerMode::ThreadPerConn,
            ServerEngine::Idle => self.opts.server_mode,
        }
    }

    /// Register a node served by a peer outside this transport (another
    /// process, or a hand-rolled server in a fault-injection test).
    pub fn register_remote(&self, addr: SocketAddr) -> NodeId {
        let mut g = self.nodes.write();
        g.push(NodeSlot {
            addr: Some(addr),
            alive: Arc::new(AtomicBool::new(true)),
        });
        // lint: allow(truncating-cast) — node registry is deployment-scale
        // (hundreds of slots), nowhere near u32::MAX
        NodeId(g.len() as u32 - 1)
    }

    /// The socket address a bound node listens on.
    pub fn addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.nodes.read().get(node.0 as usize).and_then(|s| s.addr)
    }

    /// Kill a node: its connections close at the next frame instead of
    /// dispatching, so callers observe `Unreachable` — the service
    /// state itself is preserved (the sim's "process death with intact
    /// memory image" semantics).
    pub fn kill(&self, node: NodeId) {
        if let Some(slot) = self.nodes.read().get(node.0 as usize) {
            slot.alive.store(false, Ordering::Release);
        }
    }

    /// Revive a previously killed node.
    pub fn revive(&self, node: NodeId) {
        if let Some(slot) = self.nodes.read().get(node.0 as usize) {
            slot.alive.store(true, Ordering::Release);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total frames carried (request + response per call), for
    /// aggregation assertions — same accounting as the sim cluster.
    pub fn message_count(&self) -> u64 {
        self.shared.messages.load(Ordering::Relaxed)
    }

    /// Total wire bytes carried, envelopes included.
    pub fn byte_count(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Established connections the server side currently holds.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// Connections shed with a typed [`CTRL_SHED`] close (fd
    /// exhaustion or the [`TcpOptions::max_connections`] cap).
    pub fn shed_count(&self) -> u64 {
        self.shared.sheds.load(Ordering::Relaxed)
    }

    /// Toggle the gather-write path (benchmarks only). `false` restores
    /// the seed regime: every outbound body is flattened into one
    /// contiguous buffer first — a metered copy per frame.
    pub fn set_gather_write(&self, enabled: bool) {
        self.shared.gather.store(enabled, Ordering::Relaxed);
    }

    /// Whether outbound frames are gather-written.
    pub fn gather_write(&self) -> bool {
        self.shared.gather.load(Ordering::Relaxed)
    }

    /// Live multiplexed connections to `node` (white-box metric: fault
    /// tests assert a failed connection is dropped, not kept).
    pub fn pooled_connections(&self, node: NodeId) -> usize {
        self.mux.lock().get(&node.0).map_or(0, Vec::len)
    }

    /// Pick the least-loaded live connection to `to`, dialing a new one
    /// only when all existing ones are busy and the per-peer cap allows.
    fn mux_conn(&self, to: NodeId, addr: SocketAddr) -> Result<Arc<MuxConn>, BlobError> {
        let cap = self.opts.max_pooled_per_peer.max(1);
        {
            let mut map = self.mux.lock();
            if let Some(pool) = map.get_mut(&to.0) {
                pool.retain(|c| !c.is_dead());
                if let Some(best) = pool.iter().min_by_key(|c| c.inflight()).cloned() {
                    if best.inflight() == 0 || pool.len() >= cap {
                        return Ok(best);
                    }
                }
            }
        }
        // Every connection is busy (or none exists): dial outside the
        // pool lock so concurrent calls never serialize on a connect.
        let conn = MuxConn::connect(
            addr,
            &self.opts,
            Arc::clone(&self.mux),
            to.0,
            Arc::clone(&self.shared),
        )?;
        let mut map = self.mux.lock();
        let pool = map.entry(to.0).or_default();
        pool.retain(|c| !c.is_dead());
        if pool.len() >= cap {
            // Concurrent dials raced us past the cap: multiplex over an
            // existing connection and discard ours.
            if let Some(best) = pool.iter().min_by_key(|c| c.inflight()).cloned() {
                drop(map);
                conn.close();
                return Ok(best);
            }
        }
        pool.push(Arc::clone(&conn));
        Ok(conn)
    }
}

impl Transport for TcpTransport {
    fn call(&self, _from: NodeId, to: NodeId, vt: u64, frame: Frame) -> TransportResult {
        let addr = {
            let g = self.nodes.read();
            let slot = g
                .get(to.0 as usize)
                .ok_or(BlobError::Unreachable("unknown tcp node"))?;
            slot.addr
                .ok_or(BlobError::Unreachable("no tcp endpoint bound"))?
        };
        let gather = self.shared.gather.load(Ordering::Relaxed);
        // Registration can race a connection dying (its reader resolves
        // every registered slot, but a conn observed live can be dead by
        // the time we register): retry on a fresh connection.
        let mut last_err = BlobError::Unreachable("tcp connect failed");
        for _ in 0..3 {
            let conn = self.mux_conn(to, addr)?;
            match conn.register() {
                Ok((corr, slot)) => {
                    let req_wire = conn.send(corr, vt, &frame, gather)?;
                    let (resp_vt, resp, resp_wire) = slot.wait()?;
                    self.shared.messages.fetch_add(2, Ordering::Relaxed);
                    self.shared
                        .bytes
                        .fetch_add((req_wire + resp_wire) as u64, Ordering::Relaxed);
                    return Ok((resp, resp_vt));
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Tear down client connections: shutdown EOFs each reader.
        let conns: Vec<Arc<MuxConn>> = self.mux.lock().drain().flat_map(|(_, pool)| pool).collect();
        for conn in &conns {
            conn.close();
        }
        for conn in conns {
            conn.join_reader();
        }
        match std::mem::replace(&mut *self.server.lock(), ServerEngine::Idle) {
            ServerEngine::Idle => {}
            #[cfg(unix)]
            ServerEngine::Reactor(mut r) => r.stop(),
            ServerEngine::Threads(accepts) => {
                // Wake each accept thread with a throwaway connection.
                for (addr, _) in &accepts {
                    let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
                }
                for (_, handle) in accepts {
                    let _ = handle.join();
                }
            }
        }
    }
}

/// `EMFILE`/`ENFILE`: the process or system is out of file descriptors.
fn is_fd_exhaustion(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// Shed a just-accepted connection with a typed close: best-effort
/// write of the [`CTRL_SHED`] control frame, then drop.
pub(crate) fn shed_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let head = encode_head(CTRL_CORR, SHED_RETRY_HINT_MS, CTRL_SHED, 0);
    let _ = (&stream).write_all(&head);
    shared.sheds.fetch_add(1, Ordering::Relaxed);
}

/// Open the per-listener reserve fd used to accept-then-shed under fd
/// exhaustion.
pub(crate) fn open_reserve_fd() -> Option<File> {
    File::open("/dev/null").ok()
}

/// Accept loop for the [`ServerMode::ThreadPerConn`] ablation regime.
fn accept_loop(
    listener: TcpListener,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    shared: Arc<Shared>,
    opts: TcpOptions,
) {
    let mut reserve = open_reserve_fd();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if opts.max_connections > 0
                    && shared.conns.load(Ordering::Relaxed) >= opts.max_connections
                {
                    shed_connection(stream, &shared);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(shared.io_timeout);
                let _ = stream.set_write_timeout(shared.io_timeout);
                let svc = Arc::clone(&svc);
                let alive = Arc::clone(&alive);
                let shared = Arc::clone(&shared);
                shared.conns.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || serve_conn(stream, svc, alive, shared));
            }
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if is_fd_exhaustion(&e) {
                    // Shed the newest connection with a typed close: free
                    // the reserve fd, accept the waiting connection, tell
                    // it why, drop it, re-arm the reserve.
                    drop(reserve.take());
                    let shed = match listener.accept() {
                        Ok((stream, _)) => {
                            shed_connection(stream, &shared);
                            true
                        }
                        Err(_) => false,
                    };
                    reserve = open_reserve_fd();
                    if shed && reserve.is_some() {
                        continue;
                    }
                }
                // Persistent failure (couldn't even shed): back off so
                // the accept thread does not spin at 100% CPU.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// RAII decrement of the established-connection gauge.
struct ConnGauge(Arc<Shared>);

impl Drop for ConnGauge {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One connection's request loop (thread-per-connection regime): read a
/// frame, dispatch, gather-write the response with the request's
/// correlation id. Any read/decode failure or a dead node closes the
/// connection — the peer sees EOF mid-conversation.
fn serve_conn(
    mut stream: TcpStream,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    let _gauge = ConnGauge(Arc::clone(&shared));
    loop {
        let (corr, vt, frame, _) = match recv_frame(&mut stream) {
            Ok(x) => x,
            // A timeout before any envelope byte arrived is just an idle
            // pooled connection between calls: re-arm the read. Mid-frame
            // timeouts (a stalled client) fall through and close.
            Err(RecvError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) || !alive.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if shared.shutdown.load(Ordering::SeqCst) || !alive.load(Ordering::Acquire) {
            return;
        }
        let mut sctx = ServerCtx::new(vt);
        let resp = dispatch_frame(svc.as_ref(), &mut sctx, &frame);
        let done = sctx.vt + sctx.charged + sctx.charged_latency;
        if !alive.load(Ordering::Acquire) {
            return; // died during the call: no response
        }
        let gather = shared.gather.load(Ordering::Relaxed);
        if send_frame(&mut stream, corr, done, &resp, gather).is_err() {
            return;
        }
    }
}

/// A socket read/write timeout surfaces as `WouldBlock` or `TimedOut`
/// depending on the platform.
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

pub(crate) enum SendError {
    Io(io::Error),
    Codec(CodecError),
}

/// Encode the 26-byte wire head for a frame of `body_len` body bytes.
pub(crate) fn encode_head(corr: u64, vt: u64, method: u16, body_len: usize) -> [u8; WIRE_HEAD] {
    let mut head = [0u8; WIRE_HEAD];
    // lint: allow(truncating-cast) — every caller rejects body_len >
    // MAX_FRAME_BODY (1 GiB) before encoding, so both casts fit u32
    head[0..4].copy_from_slice(&((ENVELOPE_FIXED + body_len) as u32).to_le_bytes());
    head[4..12].copy_from_slice(&corr.to_le_bytes());
    head[12..20].copy_from_slice(&vt.to_le_bytes());
    head[20..22].copy_from_slice(&method.to_le_bytes());
    // lint: allow(truncating-cast) — bounded by MAX_FRAME_BODY, see above
    head[22..26].copy_from_slice(&(body_len as u32).to_le_bytes());
    head
}

/// Write one frame: the 26-byte head then the body. Gather mode hands
/// the head plus every body segment to `write_vectored` in one slice
/// list; flatten mode (ablation) materializes the body contiguously
/// first — a metered copy. Returns the wire size.
pub(crate) fn send_frame<W: Write>(
    stream: &mut W,
    corr: u64,
    vt: u64,
    frame: &Frame,
    gather: bool,
) -> Result<usize, SendError> {
    let body_len = frame.body.len();
    if body_len as u64 > MAX_FRAME_BODY {
        return Err(SendError::Codec(CodecError::LengthOverflow {
            declared: body_len as u64,
        }));
    }
    let head = encode_head(corr, vt, frame.method, body_len);
    if gather {
        let mut slices = frame.body.as_io_slices(&head);
        write_all_vectored(stream, &mut slices).map_err(SendError::Io)?;
    } else {
        // lint: allow(unmetered-copy) — the ablated flatten; Chain::to_vec records it
        let flat = frame.body.to_vec();
        stream.write_all(&head).map_err(SendError::Io)?;
        stream.write_all(&flat).map_err(SendError::Io)?;
    }
    Ok(head.len() + body_len)
}

/// `write_all` over a vectored slice list, advancing across partial
/// writes without ever copying payload bytes.
pub(crate) fn write_all_vectored<W: Write>(
    stream: &mut W,
    bufs: &mut [IoSlice<'_>],
) -> io::Result<()> {
    let mut bufs = bufs;
    while !bufs.is_empty() {
        match stream.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "tcp peer stopped accepting bytes",
                ))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

pub(crate) enum RecvError {
    /// Clean close at a frame boundary.
    Closed,
    /// Read timeout at a frame boundary (no envelope byte yet): the
    /// connection is idle, not stalled. Servers re-arm; client readers
    /// with calls in flight treat it as a timeout.
    IdleTimeout,
    Io(io::Error),
    Codec(CodecError),
}

/// Read one frame into a single receive buffer and decode it with
/// [`Reader::from_buf`], so payloads are lent out of the buffer by
/// refcount. Returns `(corr, vt, frame, wire_size)`.
pub(crate) fn recv_frame<R: Read>(stream: &mut R) -> Result<(u64, u64, Frame, usize), RecvError> {
    let mut len4 = [0u8; ENVELOPE_LEN_BYTES];
    let mut got = 0usize;
    while got < len4.len() {
        match stream.read(&mut len4[got..]) {
            Ok(0) if got == 0 => return Err(RecvError::Closed),
            Ok(0) => {
                return Err(RecvError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "tcp peer closed mid-envelope",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if got == 0 && is_timeout(&e) => return Err(RecvError::IdleTimeout),
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    // Validate the peer-controlled length in the u64 domain, then
    // narrow with a checked conversion — never a silent cast.
    let declared = u64::from(u32::from_le_bytes(len4));
    if declared < ENVELOPE_FIXED as u64 || declared > MAX_WIRE_FRAME {
        // Reject before allocating: a corrupt length must not buy a
        // multi-gigabyte Vec.
        return Err(RecvError::Codec(CodecError::LengthOverflow { declared }));
    }
    let len = usize::try_from(declared)
        .map_err(|_| RecvError::Codec(CodecError::LengthOverflow { declared }))?;
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf).map_err(RecvError::Io)?;
    decode_wire_body(buf).map(|(corr, vt, frame)| (corr, vt, frame, ENVELOPE_LEN_BYTES + len))
}

/// Decode an already-read wire body (everything after the length
/// prefix): correlation id, virtual time, frame. The bytes are owned
/// and immutable from here on, so payload ranges are lent out of this
/// allocation by refcount.
pub(crate) fn decode_wire_body(body: Vec<u8>) -> Result<(u64, u64, Frame), RecvError> {
    let buf = PageBuf::from_vec(body);
    let mut r = Reader::from_buf(&buf);
    let corr = u64::decode(&mut r).map_err(RecvError::Codec)?;
    let vt = u64::decode(&mut r).map_err(RecvError::Codec)?;
    let frame = Frame::decode(&mut r).map_err(RecvError::Codec)?;
    r.finish().map_err(RecvError::Codec)?;
    Ok((corr, vt, frame))
}

/// Encode one whole wire frame (envelope v2 head + body) into a
/// contiguous buffer. Support surface for fault tests and raw-socket
/// benchmark drivers; the transport itself gather-writes instead.
pub fn encode_wire_frame(corr: u64, vt: u64, frame: &Frame) -> Result<Vec<u8>, CodecError> {
    let body_len = frame.body.len();
    if body_len as u64 > MAX_FRAME_BODY {
        return Err(CodecError::LengthOverflow {
            declared: body_len as u64,
        });
    }
    let mut out = Vec::with_capacity(WIRE_HEAD + body_len);
    // lint: allow(unmetered-copy) — fixed-width frame head, not payload
    out.extend_from_slice(&encode_head(corr, vt, frame.method, body_len));
    for seg in frame.body.segments() {
        // lint: allow(unmetered-copy) — bench-driver flatten helper, off the
        // serving transport (which gather-writes)
        out.extend_from_slice(seg);
    }
    Ok(out)
}

/// Read and decode one whole wire frame from `r`, returning
/// `(corr, vt, frame)`. Support surface for fault tests and raw-socket
/// benchmark drivers — errors map exactly like the transport's own
/// receive path.
pub fn read_wire_frame<R: Read>(r: &mut R) -> Result<(u64, u64, Frame), BlobError> {
    match recv_frame(r) {
        Ok((corr, vt, frame, _)) => Ok((corr, vt, frame)),
        Err(RecvError::Codec(c)) => Err(BlobError::Codec(c)),
        Err(RecvError::IdleTimeout) => Err(BlobError::Unreachable("tcp recv timed out")),
        Err(RecvError::Io(e)) if is_timeout(&e) => {
            Err(BlobError::Unreachable("tcp recv timed out"))
        }
        // lint: allow(overload-erasure) — RecvError is pure I/O; a shed arrives
        // as a decoded Overload response frame, not here
        Err(_) => Err(BlobError::Unreachable("tcp connection lost")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use crate::service::{respond, Service};
    use crate::transport::Ctx;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            ctx.charge(250);
            respond(frame, |x: u64| Ok(x + 1))
        }
    }

    fn setup() -> (Arc<TcpTransport>, NodeId, NodeId) {
        let t = Arc::new(TcpTransport::new());
        let client = t.add_node();
        let server = t.add_node();
        t.bind(server, Arc::new(Echo));
        (t, client, server)
    }

    #[test]
    fn call_roundtrip_over_loopback() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let mut ctx = Ctx::start();
        let resp: u64 = rpc.call(&mut ctx, s, 1, &41u64).unwrap();
        assert_eq!(resp, 42);
        assert_eq!(ctx.vt, 250, "server charges flow back through the envelope");
        assert_eq!(t.message_count(), 2, "request + response");
        assert!(t.byte_count() > 0);
    }

    #[cfg(unix)]
    #[test]
    fn reactor_is_the_default_regime() {
        let (t, _, _) = setup();
        assert_eq!(t.server_mode(), ServerMode::Reactor);
    }

    #[test]
    fn thread_per_conn_ablation_still_serves() {
        let t = Arc::new(TcpTransport::with_options(TcpOptions {
            server_mode: ServerMode::ThreadPerConn,
            ..TcpOptions::default()
        }));
        let c = t.add_node();
        let s = t.add_node();
        t.bind(s, Arc::new(Echo));
        assert_eq!(t.server_mode(), ServerMode::ThreadPerConn);
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let resp: u64 = rpc.call(&mut Ctx::start(), s, 1, &41u64).unwrap();
        assert_eq!(resp, 42);
    }

    #[test]
    fn connections_are_pooled_and_reused() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let mut ctx = Ctx::start();
        for i in 0..10u64 {
            let r: u64 = rpc.call(&mut ctx, s, 1, &i).unwrap();
            assert_eq!(r, i + 1);
        }
        assert_eq!(
            t.pooled_connections(s),
            1,
            "sequential calls multiplex over one connection"
        );
    }

    #[test]
    fn concurrent_calls_share_one_multiplexed_connection() {
        // Cap the pool at one connection: all concurrency must be
        // carried as in-flight calls on that single socket.
        let t = Arc::new(TcpTransport::with_options(TcpOptions {
            max_pooled_per_peer: 1,
            ..TcpOptions::default()
        }));
        let c = t.add_node();
        let s = t.add_node();
        t.bind(s, Arc::new(Echo));
        let rpc = Arc::new(RpcClient::new(Arc::clone(&t) as _, c));
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let rpc = Arc::clone(&rpc);
                std::thread::spawn(move || {
                    let r: u64 = rpc.call(&mut Ctx::start(), s, 1, &i).unwrap();
                    assert_eq!(r, i + 1);
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(
            t.pooled_connections(s),
            1,
            "a capped pool multiplexes, never queues on checkout"
        );
    }

    #[test]
    fn unbound_and_unknown_nodes_are_unreachable() {
        let (t, c, _) = setup();
        let ghost = t.add_node(); // no listener
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let err = rpc
            .call::<u64, u64>(&mut Ctx::start(), ghost, 1, &1)
            .unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
        let err = t
            .call(c, NodeId(999), 0, Frame::from_msg(1, &1u64))
            .unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
    }

    #[test]
    fn kill_and_revive_preserve_service_state() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let mut ctx = Ctx::start();
        let _: u64 = rpc.call(&mut ctx, s, 1, &1u64).unwrap();
        t.kill(s);
        let err = rpc.call::<u64, u64>(&mut ctx, s, 1, &1).unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
        assert_eq!(
            t.pooled_connections(s),
            0,
            "the failed call's connection must not be pooled"
        );
        t.revive(s);
        let r: u64 = rpc.call(&mut ctx, s, 1, &9u64).unwrap();
        assert_eq!(r, 10);
    }

    #[test]
    fn batch_travels_as_one_message_per_destination() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let calls: Vec<(NodeId, u16, u64)> = (0..8).map(|i| (s, 1, i as u64)).collect();
        let before = t.message_count();
        let resps = rpc.fan_out::<u64, u64>(&mut Ctx::start(), &calls);
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as u64 + 1);
        }
        assert_eq!(
            t.message_count() - before,
            2,
            "aggregation survives the socket: one frame each way"
        );
    }

    #[test]
    fn page_payload_roundtrips_shared_through_the_socket() {
        use blobseer_util::copymeter;
        struct PageEcho;
        impl Service for PageEcho {
            fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
                respond(frame, |p: PageBuf| Ok(p))
            }
        }
        let _shared = blobseer_util::testsync::ablation_shared();
        let t = Arc::new(TcpTransport::new());
        let c = t.add_node();
        let s = t.add_node();
        t.bind(s, Arc::new(PageEcho));
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let page = PageBuf::from_vec(vec![0xAB; 128 * 1024]);
        let before = copymeter::snapshot();
        let back: PageBuf = rpc.call(&mut Ctx::start(), s, 1, &page).unwrap();
        assert_eq!(back, page);
        assert_eq!(
            before.bytes_since(),
            0,
            "payload leg must be copy-free: gather-write out, lend-on-receive back"
        );
    }

    #[test]
    fn wire_frame_helpers_roundtrip() {
        let f = Frame::from_msg(7, &99u64);
        let bytes = encode_wire_frame(3, 11, &f).unwrap();
        assert_eq!(bytes.len(), WIRE_HEAD + f.body.len());
        let (corr, vt, back) = read_wire_frame(&mut &bytes[..]).unwrap();
        assert_eq!((corr, vt), (3, 11));
        assert_eq!(back, f);
    }
}
