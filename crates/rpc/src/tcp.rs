//! Real TCP transport: gather-write frames over loopback or a LAN.
//!
//! This is the first transport whose frames actually cross a socket, so
//! the copy discipline established for the in-process path (ROADMAP
//! "Data path & copy discipline") finally meets the kernel:
//!
//! * **Send is gather-write.** A frame leaves as a length-prefixed
//!   envelope followed by the body's [`ByteChain`](blobseer_proto::wire::ByteChain) segments, handed to
//!   `write_vectored` via [`ByteChain::as_io_slices`](blobseer_proto::wire::ByteChain::as_io_slices) — no flattening
//!   memcpy, no matter how many page payloads a batched frame carries.
//!   The seed behaviour (flatten the chain into one contiguous buffer,
//!   a metered copy) survives as [`TcpTransport::set_gather_write`]
//!   `(false)` so the `pr3_tcp` bench can measure the difference.
//! * **Receive is lend-on-decode.** Each inbound frame is read into a
//!   single [`PageBuf`] and decoded with [`Reader::from_buf`], so page
//!   payloads come out as refcounted slices of the receive buffer — the
//!   payload leg meters the same zero copies as the in-process path.
//! * **Corrupt bytes are errors, never panics.** Envelope and body
//!   length prefixes are capped ([`MAX_WIRE_FRAME`] /
//!   [`crate::frame::MAX_FRAME_BODY`]) before any allocation, and every
//!   decode failure maps to a typed error.
//!
//! # Topology
//!
//! Mirrors [`InProcTransport`](crate::transport::InProcTransport):
//! [`TcpTransport::add_node`] allocates a node id, [`TcpTransport::bind`]
//! attaches a service — which here starts a loopback listener plus an
//! accept thread that hands each connection to a worker dispatching
//! through the existing [`Service`]/[`dispatch_frame`] machinery.
//! Workers come and go with connections; the client side keeps the
//! population small by pooling one connection per in-flight call per
//! destination and reusing it across calls. Remote peers that live in
//! another process register with [`TcpTransport::register_remote`].
//!
//! # Error taxonomy
//!
//! | failure                                   | surfaced as                 |
//! |-------------------------------------------|-----------------------------|
//! | connect refused / timeout                 | [`BlobError::Unreachable`]  |
//! | peer closed mid-frame, short read/write   | [`BlobError::Unreachable`]  |
//! | I/O timeout (peer accepted, never replied)| [`BlobError::Unreachable`]  |
//! | corrupt envelope or frame bytes           | [`BlobError::Codec`]        |
//! | body above the frame cap (send or recv)   | [`BlobError::Codec`]        |
//!
//! A failed call never returns its connection to the pool; the next call
//! reconnects. Virtual time still flows (the envelope carries `vt` and
//! handlers may charge), but wall-clock time is real — TCP deployments
//! use zero-cost models and measure with real clocks.

use crate::frame::{Frame, MAX_FRAME_BODY};
use crate::service::{dispatch_frame, ServerCtx, Service};
use blobseer_proto::wire::{Reader, Wire};
use blobseer_proto::{BlobError, CodecError, NodeId, PageBuf};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::transport::{Transport, TransportResult};

/// Envelope bytes before the frame proper: payload length `u32` is
/// followed by the virtual-time stamp `u64`; the frame's own header
/// (method `u16`, body length `u32`) comes next.
const ENVELOPE_LEN_BYTES: usize = 4;
/// Bytes covered by the envelope length besides the frame body.
const ENVELOPE_FIXED: usize = 8 + 2 + 4;

/// Sanity cap on one whole wire frame (envelope fixed part + body):
/// anything larger is rejected before allocation, on both sides.
pub const MAX_WIRE_FRAME: u64 = MAX_FRAME_BODY + ENVELOPE_FIXED as u64;

/// Tunables for a [`TcpTransport`].
#[derive(Clone, Copy, Debug)]
pub struct TcpOptions {
    /// Client-side connect timeout.
    pub connect_timeout: Duration,
    /// Client-side per-read/per-write timeout (`None` = block forever).
    /// Bounds how long a call can hang on a peer that accepted the
    /// connection but never answers.
    pub io_timeout: Option<Duration>,
    /// Idle connections kept per destination; checkouts beyond this are
    /// fresh connects and are closed instead of pooled on return.
    pub max_pooled_per_peer: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            max_pooled_per_peer: 64,
        }
    }
}

/// State shared with accept/worker threads (no back-reference to the
/// transport, so dropping the transport tears the threads down).
struct Shared {
    shutdown: AtomicBool,
    gather: AtomicBool,
    messages: AtomicU64,
    bytes: AtomicU64,
    /// Applied to accepted sockets too: a client that stalls mid-frame
    /// (or stops draining its responses) times its worker out instead of
    /// parking a thread and an fd forever. Idle pooled connections are
    /// exempt — a timeout at a frame boundary just re-arms the read.
    io_timeout: Option<Duration>,
}

struct NodeSlot {
    addr: Option<SocketAddr>,
    alive: Arc<AtomicBool>,
}

/// A real socket transport over loopback (or any reachable address via
/// [`TcpTransport::register_remote`]). See the module docs for the frame
/// discipline and error taxonomy.
pub struct TcpTransport {
    opts: TcpOptions,
    nodes: RwLock<Vec<NodeSlot>>,
    pool: Mutex<HashMap<u32, Vec<TcpStream>>>,
    accepts: Mutex<Vec<(SocketAddr, JoinHandle<()>)>>,
    shared: Arc<Shared>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Empty transport with default options.
    pub fn new() -> Self {
        Self::with_options(TcpOptions::default())
    }

    /// Empty transport with explicit options.
    pub fn with_options(opts: TcpOptions) -> Self {
        Self {
            opts,
            nodes: RwLock::new(Vec::new()),
            pool: Mutex::new(HashMap::new()),
            accepts: Mutex::new(Vec::new()),
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                gather: AtomicBool::new(true),
                messages: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                io_timeout: opts.io_timeout,
            }),
        }
    }

    /// Add a node (returns its id). Client-only nodes never bind a
    /// listener; calls *to* them fail until [`TcpTransport::bind`].
    pub fn add_node(&self) -> NodeId {
        let mut g = self.nodes.write();
        g.push(NodeSlot {
            addr: None,
            alive: Arc::new(AtomicBool::new(true)),
        });
        NodeId(g.len() as u32 - 1)
    }

    /// Bind a service to a node: starts a loopback listener and its
    /// accept thread. Panics if the node is unknown or already bound.
    pub fn bind(&self, node: NodeId, svc: Arc<dyn Service>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener local addr");
        let alive = {
            let mut g = self.nodes.write();
            let slot = g.get_mut(node.0 as usize).expect("bind: node exists");
            assert!(slot.addr.is_none(), "bind: node already has a service");
            slot.addr = Some(addr);
            Arc::clone(&slot.alive)
        };
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::spawn(move || accept_loop(listener, svc, alive, shared));
        self.accepts.lock().push((addr, handle));
    }

    /// Register a node served by a peer outside this transport (another
    /// process, or a hand-rolled server in a fault-injection test).
    pub fn register_remote(&self, addr: SocketAddr) -> NodeId {
        let mut g = self.nodes.write();
        g.push(NodeSlot {
            addr: Some(addr),
            alive: Arc::new(AtomicBool::new(true)),
        });
        NodeId(g.len() as u32 - 1)
    }

    /// The socket address a bound node listens on.
    pub fn addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.nodes.read().get(node.0 as usize).and_then(|s| s.addr)
    }

    /// Kill a node: its workers close each connection at the next frame
    /// instead of dispatching, so callers observe `Unreachable` — the
    /// service state itself is preserved (the sim's "process death with
    /// intact memory image" semantics).
    pub fn kill(&self, node: NodeId) {
        if let Some(slot) = self.nodes.read().get(node.0 as usize) {
            slot.alive.store(false, Ordering::Release);
        }
    }

    /// Revive a previously killed node.
    pub fn revive(&self, node: NodeId) {
        if let Some(slot) = self.nodes.read().get(node.0 as usize) {
            slot.alive.store(true, Ordering::Release);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total frames carried (request + response per call), for
    /// aggregation assertions — same accounting as the sim cluster.
    pub fn message_count(&self) -> u64 {
        self.shared.messages.load(Ordering::Relaxed)
    }

    /// Total wire bytes carried, envelopes included.
    pub fn byte_count(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Toggle the gather-write path (benchmarks only). `false` restores
    /// the seed regime: every outbound body is flattened into one
    /// contiguous buffer first — a metered copy per frame.
    pub fn set_gather_write(&self, enabled: bool) {
        self.shared.gather.store(enabled, Ordering::Relaxed);
    }

    /// Whether outbound frames are gather-written.
    pub fn gather_write(&self) -> bool {
        self.shared.gather.load(Ordering::Relaxed)
    }

    /// Idle pooled connections to `node` (white-box metric: fault tests
    /// assert a failed call never returns its connection to the pool).
    pub fn pooled_connections(&self, node: NodeId) -> usize {
        self.pool.lock().get(&node.0).map_or(0, Vec::len)
    }

    fn checkout(&self, to: NodeId, addr: SocketAddr) -> Result<TcpStream, BlobError> {
        if let Some(conn) = self.pool.lock().get_mut(&to.0).and_then(Vec::pop) {
            return Ok(conn);
        }
        let stream = TcpStream::connect_timeout(&addr, self.opts.connect_timeout)
            .map_err(|_| BlobError::Unreachable("tcp connect failed"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.opts.io_timeout);
        let _ = stream.set_write_timeout(self.opts.io_timeout);
        Ok(stream)
    }

    fn checkin(&self, to: NodeId, conn: TcpStream) {
        let mut pool = self.pool.lock();
        let idle = pool.entry(to.0).or_default();
        if idle.len() < self.opts.max_pooled_per_peer {
            idle.push(conn);
        }
    }
}

impl Transport for TcpTransport {
    fn call(&self, _from: NodeId, to: NodeId, vt: u64, frame: Frame) -> TransportResult {
        let addr = {
            let g = self.nodes.read();
            let slot = g
                .get(to.0 as usize)
                .ok_or(BlobError::Unreachable("unknown tcp node"))?;
            slot.addr
                .ok_or(BlobError::Unreachable("no tcp endpoint bound"))?
        };
        let mut conn = self.checkout(to, addr)?;
        let gather = self.shared.gather.load(Ordering::Relaxed);
        let req_wire = send_frame(&mut conn, vt, &frame, gather).map_err(|e| match e {
            SendError::Codec(c) => BlobError::Codec(c),
            SendError::Io(e) if is_timeout(&e) => BlobError::Unreachable("tcp send timed out"),
            SendError::Io(_) => BlobError::Unreachable("tcp send failed"),
        })?;
        match recv_frame(&mut conn) {
            Ok((resp_vt, resp, resp_wire)) => {
                self.checkin(to, conn);
                self.shared.messages.fetch_add(2, Ordering::Relaxed);
                self.shared
                    .bytes
                    .fetch_add((req_wire + resp_wire) as u64, Ordering::Relaxed);
                Ok((resp, resp_vt))
            }
            Err(RecvError::Codec(c)) => Err(BlobError::Codec(c)),
            Err(RecvError::IdleTimeout) => Err(BlobError::Unreachable("tcp recv timed out")),
            Err(RecvError::Io(e)) if is_timeout(&e) => {
                Err(BlobError::Unreachable("tcp recv timed out"))
            }
            Err(_) => Err(BlobError::Unreachable("tcp connection lost")),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Closing pooled connections EOFs their workers.
        self.pool.lock().clear();
        // Wake each accept thread with a throwaway connection, then join.
        let accepts = std::mem::take(&mut *self.accepts.lock());
        for (addr, _) in &accepts {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for (_, handle) in accepts {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(shared.io_timeout);
                let _ = stream.set_write_timeout(shared.io_timeout);
                let svc = Arc::clone(&svc);
                let alive = Arc::clone(&alive);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || serve_conn(stream, svc, alive, shared));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly so a persistent error condition does
                // not busy-spin the accept thread at 100% CPU.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// One connection's request loop: read a frame, dispatch, gather-write
/// the response. Any read/decode failure or a dead node closes the
/// connection — the peer sees EOF mid-conversation.
fn serve_conn(
    mut stream: TcpStream,
    svc: Arc<dyn Service>,
    alive: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    loop {
        let (vt, frame, _) = match recv_frame(&mut stream) {
            Ok(x) => x,
            // A timeout before any envelope byte arrived is just an idle
            // pooled connection between calls: re-arm the read. Mid-frame
            // timeouts (a stalled client) fall through and close.
            Err(RecvError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) || !alive.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if shared.shutdown.load(Ordering::SeqCst) || !alive.load(Ordering::Acquire) {
            return;
        }
        let mut sctx = ServerCtx::new(vt);
        let resp = dispatch_frame(svc.as_ref(), &mut sctx, &frame);
        let done = sctx.vt + sctx.charged + sctx.charged_latency;
        if !alive.load(Ordering::Acquire) {
            return; // died during the call: no response
        }
        let gather = shared.gather.load(Ordering::Relaxed);
        if send_frame(&mut stream, done, &resp, gather).is_err() {
            return;
        }
    }
}

/// A socket read/write timeout surfaces as `WouldBlock` or `TimedOut`
/// depending on the platform.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

enum SendError {
    Io(io::Error),
    Codec(CodecError),
}

/// Write one frame: 18-byte header (`len`, `vt`, `method`, `body_len`)
/// then the body. Gather mode hands the header plus every body segment
/// to `write_vectored` in one slice list; flatten mode (ablation)
/// materializes the body contiguously first — a metered copy. Returns
/// the wire size.
fn send_frame(
    stream: &mut TcpStream,
    vt: u64,
    frame: &Frame,
    gather: bool,
) -> Result<usize, SendError> {
    let body_len = frame.body.len();
    if body_len as u64 > MAX_FRAME_BODY {
        return Err(SendError::Codec(CodecError::LengthOverflow {
            declared: body_len as u64,
        }));
    }
    let mut head = [0u8; ENVELOPE_LEN_BYTES + ENVELOPE_FIXED];
    head[0..4].copy_from_slice(&((ENVELOPE_FIXED + body_len) as u32).to_le_bytes());
    head[4..12].copy_from_slice(&vt.to_le_bytes());
    head[12..14].copy_from_slice(&frame.method.to_le_bytes());
    head[14..18].copy_from_slice(&(body_len as u32).to_le_bytes());
    if gather {
        let mut slices = frame.body.as_io_slices(&head);
        write_all_vectored(stream, &mut slices).map_err(SendError::Io)?;
    } else {
        let flat = frame.body.to_vec(); // the ablated flatten (metered)
        stream.write_all(&head).map_err(SendError::Io)?;
        stream.write_all(&flat).map_err(SendError::Io)?;
    }
    Ok(head.len() + body_len)
}

/// `write_all` over a vectored slice list, advancing across partial
/// writes without ever copying payload bytes.
fn write_all_vectored(stream: &mut TcpStream, bufs: &mut [IoSlice<'_>]) -> io::Result<()> {
    let mut bufs = bufs;
    while !bufs.is_empty() {
        match stream.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "tcp peer stopped accepting bytes",
                ))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

enum RecvError {
    /// Clean close at a frame boundary.
    Closed,
    /// Read timeout at a frame boundary (no envelope byte yet): the
    /// connection is idle, not stalled. Servers re-arm; clients waiting
    /// on a response treat it as a timeout.
    IdleTimeout,
    Io(io::Error),
    Codec(CodecError),
}

/// Read one frame into a single receive buffer and decode it with
/// [`Reader::from_buf`], so payloads are lent out of the buffer by
/// refcount. Returns `(vt, frame, wire_size)`.
fn recv_frame(stream: &mut TcpStream) -> Result<(u64, Frame, usize), RecvError> {
    let mut len4 = [0u8; ENVELOPE_LEN_BYTES];
    let mut got = 0usize;
    while got < len4.len() {
        match stream.read(&mut len4[got..]) {
            Ok(0) if got == 0 => return Err(RecvError::Closed),
            Ok(0) => {
                return Err(RecvError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "tcp peer closed mid-envelope",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if got == 0 && is_timeout(&e) => return Err(RecvError::IdleTimeout),
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len < ENVELOPE_FIXED || len as u64 > MAX_WIRE_FRAME {
        // Reject before allocating: a corrupt length must not buy a
        // multi-gigabyte Vec.
        return Err(RecvError::Codec(CodecError::LengthOverflow {
            declared: len as u64,
        }));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf).map_err(RecvError::Io)?;
    // From here on the bytes are owned and immutable: decode lends
    // payload ranges out of this allocation by refcount.
    let buf = PageBuf::from_vec(buf);
    let mut r = Reader::from_buf(&buf);
    let vt = u64::decode(&mut r).map_err(RecvError::Codec)?;
    let frame = Frame::decode(&mut r).map_err(RecvError::Codec)?;
    r.finish().map_err(RecvError::Codec)?;
    Ok((vt, frame, ENVELOPE_LEN_BYTES + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use crate::service::{respond, Service};
    use crate::transport::Ctx;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            ctx.charge(250);
            respond(frame, |x: u64| Ok(x + 1))
        }
    }

    fn setup() -> (Arc<TcpTransport>, NodeId, NodeId) {
        let t = Arc::new(TcpTransport::new());
        let client = t.add_node();
        let server = t.add_node();
        t.bind(server, Arc::new(Echo));
        (t, client, server)
    }

    #[test]
    fn call_roundtrip_over_loopback() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let mut ctx = Ctx::start();
        let resp: u64 = rpc.call(&mut ctx, s, 1, &41u64).unwrap();
        assert_eq!(resp, 42);
        assert_eq!(ctx.vt, 250, "server charges flow back through the envelope");
        assert_eq!(t.message_count(), 2, "request + response");
        assert!(t.byte_count() > 0);
    }

    #[test]
    fn connections_are_pooled_and_reused() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let mut ctx = Ctx::start();
        for i in 0..10u64 {
            let r: u64 = rpc.call(&mut ctx, s, 1, &i).unwrap();
            assert_eq!(r, i + 1);
        }
        assert_eq!(
            t.pooled_connections(s),
            1,
            "sequential calls reuse one pooled connection"
        );
    }

    #[test]
    fn unbound_and_unknown_nodes_are_unreachable() {
        let (t, c, _) = setup();
        let ghost = t.add_node(); // no listener
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let err = rpc
            .call::<u64, u64>(&mut Ctx::start(), ghost, 1, &1)
            .unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
        let err = t
            .call(c, NodeId(999), 0, Frame::from_msg(1, &1u64))
            .unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
    }

    #[test]
    fn kill_and_revive_preserve_service_state() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let mut ctx = Ctx::start();
        let _: u64 = rpc.call(&mut ctx, s, 1, &1u64).unwrap();
        t.kill(s);
        let err = rpc.call::<u64, u64>(&mut ctx, s, 1, &1).unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
        assert_eq!(
            t.pooled_connections(s),
            0,
            "the failed call's connection must not be pooled"
        );
        t.revive(s);
        let r: u64 = rpc.call(&mut ctx, s, 1, &9u64).unwrap();
        assert_eq!(r, 10);
    }

    #[test]
    fn batch_travels_as_one_message_per_destination() {
        let (t, c, s) = setup();
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let calls: Vec<(NodeId, u16, u64)> = (0..8).map(|i| (s, 1, i as u64)).collect();
        let before = t.message_count();
        let resps = rpc.fan_out::<u64, u64>(&mut Ctx::start(), &calls);
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as u64 + 1);
        }
        assert_eq!(
            t.message_count() - before,
            2,
            "aggregation survives the socket: one frame each way"
        );
    }

    #[test]
    fn page_payload_roundtrips_shared_through_the_socket() {
        use blobseer_util::copymeter;
        struct PageEcho;
        impl Service for PageEcho {
            fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
                respond(frame, |p: PageBuf| Ok(p))
            }
        }
        let _shared = blobseer_util::testsync::ablation_shared();
        let t = Arc::new(TcpTransport::new());
        let c = t.add_node();
        let s = t.add_node();
        t.bind(s, Arc::new(PageEcho));
        let rpc = RpcClient::new(Arc::clone(&t) as _, c);
        let page = PageBuf::from_vec(vec![0xAB; 128 * 1024]);
        let before = copymeter::snapshot();
        let back: PageBuf = rpc.call(&mut Ctx::start(), s, 1, &page).unwrap();
        assert_eq!(back, page);
        assert_eq!(
            before.bytes_since(),
            0,
            "payload leg must be copy-free: gather-write out, lend-on-receive back"
        );
    }
}
