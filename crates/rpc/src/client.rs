//! Client-side RPC: typed calls, parallel fan-out, and per-destination
//! aggregation.
//!
//! The original system "allows a single client to perform a large number
//! of concurrent RPCs" and its custom framework "delays RPC calls to a
//! single machine and streams all of them in a single real RPC call"
//! (§V.A). Both are first-class here:
//!
//! * [`RpcClient::fan_out`] issues many calls that all *start* at the
//!   caller's current virtual time; the caller's clock then advances to
//!   the latest response arrival (a parallel join).
//! * When [`AggregationPolicy::Batch`] is active, fan-out calls to the
//!   same destination are coalesced into a single batch frame — the
//!   paper's optimization, togglable so the `ablate-agg` bench can
//!   quantify it.

use crate::frame::Frame;
use crate::service::parse_response;
use crate::transport::{Ctx, Transport};
use blobseer_proto::wire::Wire;
use blobseer_proto::{BlobError, NodeId};
use std::sync::Arc;

/// Whether fan-out calls to one destination are coalesced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AggregationPolicy {
    /// One real message per logical call.
    PerCall,
    /// One real message per destination per fan-out (the paper's design).
    #[default]
    Batch,
}

/// A typed RPC endpoint bound to a source node.
#[derive(Clone)]
pub struct RpcClient {
    transport: Arc<dyn Transport>,
    from: NodeId,
    aggregation: AggregationPolicy,
}

impl RpcClient {
    /// Create a client sending from `from`.
    pub fn new(transport: Arc<dyn Transport>, from: NodeId) -> Self {
        Self {
            transport,
            from,
            aggregation: AggregationPolicy::default(),
        }
    }

    /// Override the aggregation policy (for ablations).
    pub fn with_aggregation(mut self, policy: AggregationPolicy) -> Self {
        self.aggregation = policy;
        self
    }

    /// The aggregation policy in force. Higher layers that batch at the
    /// application level (e.g. the DHT client) consult this so the
    /// `ablate-agg` toggle disables *every* form of aggregation at once.
    pub fn aggregation(&self) -> AggregationPolicy {
        self.aggregation
    }

    /// The node this client sends from.
    pub fn from_node(&self) -> NodeId {
        self.from
    }

    /// The underlying transport.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// One synchronous call; the context's clock advances to the response
    /// arrival.
    pub fn call<Req: Wire, Resp: Wire>(
        &self,
        ctx: &mut Ctx,
        to: NodeId,
        method: u16,
        req: &Req,
    ) -> Result<Resp, BlobError> {
        let frame = Frame::from_msg(method, req);
        let (resp, vt) = self.transport.call(self.from, to, ctx.vt, frame)?;
        ctx.vt = ctx.vt.max(vt);
        parse_response(&resp)
    }

    /// Parallel fan-out: every call starts at `ctx.vt`; afterwards
    /// `ctx.vt` is the maximum response arrival (the join). Responses are
    /// returned in input order.
    ///
    /// With [`AggregationPolicy::Batch`], calls sharing a destination
    /// travel in one message and their responses in one message back.
    pub fn fan_out<Req: Wire, Resp: Wire>(
        &self,
        ctx: &mut Ctx,
        calls: &[(NodeId, u16, Req)],
    ) -> Vec<Result<Resp, BlobError>> {
        let start = ctx.vt;
        let mut results: Vec<Option<Result<Resp, BlobError>>> =
            (0..calls.len()).map(|_| None).collect();
        let mut join_vt = start;

        match self.aggregation {
            AggregationPolicy::PerCall => {
                for (i, (to, method, req)) in calls.iter().enumerate() {
                    let frame = Frame::from_msg(*method, req);
                    match self.transport.call(self.from, *to, start, frame) {
                        Ok((resp, vt)) => {
                            join_vt = join_vt.max(vt);
                            results[i] = Some(parse_response(&resp));
                        }
                        Err(e) => results[i] = Some(Err(e)),
                    }
                }
            }
            AggregationPolicy::Batch => {
                // Group call indices by destination, preserving order.
                let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
                for (i, (to, _, _)) in calls.iter().enumerate() {
                    match groups.iter_mut().find(|(n, _)| n == to) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((*to, vec![i])),
                    }
                }
                for (to, idxs) in groups {
                    if idxs.len() == 1 {
                        let i = idxs[0];
                        let (_, method, req) = &calls[i];
                        let frame = Frame::from_msg(*method, req);
                        match self.transport.call(self.from, to, start, frame) {
                            Ok((resp, vt)) => {
                                join_vt = join_vt.max(vt);
                                results[i] = Some(parse_response(&resp));
                            }
                            Err(e) => results[i] = Some(Err(e)),
                        }
                        continue;
                    }
                    let frames: Vec<Frame> = idxs
                        .iter()
                        .map(|&i| Frame::from_msg(calls[i].1, &calls[i].2))
                        .collect();
                    let batch = match Frame::batch(frames) {
                        Ok(b) => b,
                        Err(e) => {
                            for slot in &idxs {
                                results[*slot] = Some(Err(BlobError::Codec(e)));
                            }
                            continue;
                        }
                    };
                    match self.transport.call(self.from, to, start, batch) {
                        Ok((resp, vt)) => {
                            join_vt = join_vt.max(vt);
                            match resp.unbatch() {
                                Some(Ok(frames)) if frames.len() == idxs.len() => {
                                    for (slot, frame) in idxs.iter().zip(frames.iter()) {
                                        results[*slot] = Some(parse_response(frame));
                                    }
                                }
                                Some(Err(_)) => {
                                    // A METHOD_BATCH response that does not
                                    // unbatch may be the server's typed
                                    // refusal (e.g. the response batch
                                    // overflowed the frame-body cap):
                                    // surface that error, not a generic one.
                                    let err = match parse_response::<()>(&resp) {
                                        Err(e) => e,
                                        Ok(()) => BlobError::Internal("malformed batch response"),
                                    };
                                    for slot in &idxs {
                                        results[*slot] = Some(Err(err.clone()));
                                    }
                                }
                                _ => {
                                    for slot in &idxs {
                                        results[*slot] = Some(Err(BlobError::Internal(
                                            "malformed batch response",
                                        )));
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            for slot in &idxs {
                                results[*slot] = Some(Err(e.clone()));
                            }
                        }
                    }
                }
            }
        }
        ctx.vt = join_vt;
        results
            .into_iter()
            // lint: allow(panic-on-serving-path) — the scatter loop above fills
            // every result slot before we get here
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{respond, ServerCtx, Service};
    use crate::transport::InProcTransport;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            respond(frame, |x: u64| Ok(x + 1))
        }
    }

    fn setup() -> (Arc<InProcTransport>, NodeId, NodeId, NodeId) {
        let t = Arc::new(InProcTransport::new());
        let client = t.add_node();
        let a = t.add_node();
        let b = t.add_node();
        t.bind(a, Arc::new(Echo));
        t.bind(b, Arc::new(Echo));
        (t, client, a, b)
    }

    #[test]
    fn single_call() {
        let (t, c, a, _) = setup();
        let rpc = RpcClient::new(t, c);
        let mut ctx = Ctx::start();
        let resp: u64 = rpc.call(&mut ctx, a, 1, &41u64).unwrap();
        assert_eq!(resp, 42);
    }

    #[test]
    fn fan_out_in_order_both_policies() {
        let (t, c, a, b) = setup();
        for policy in [AggregationPolicy::PerCall, AggregationPolicy::Batch] {
            let rpc = RpcClient::new(Arc::clone(&t) as _, c).with_aggregation(policy);
            let mut ctx = Ctx::start();
            let calls: Vec<(NodeId, u16, u64)> = (0..10)
                .map(|i| (if i % 2 == 0 { a } else { b }, 1, i as u64))
                .collect();
            let resps = rpc.fan_out::<u64, u64>(&mut ctx, &calls);
            for (i, r) in resps.iter().enumerate() {
                assert_eq!(*r.as_ref().unwrap(), i as u64 + 1, "policy {policy:?}");
            }
        }
    }

    #[test]
    fn aggregation_reduces_message_count() {
        let (t, c, a, b) = setup();
        let calls: Vec<(NodeId, u16, u64)> = (0..8)
            .map(|i| (if i < 4 { a } else { b }, 1, i as u64))
            .collect();

        let rpc =
            RpcClient::new(Arc::clone(&t) as _, c).with_aggregation(AggregationPolicy::PerCall);
        let before = t.message_count();
        rpc.fan_out::<u64, u64>(&mut Ctx::start(), &calls);
        assert_eq!(t.message_count() - before, 8);

        let rpc = RpcClient::new(Arc::clone(&t) as _, c).with_aggregation(AggregationPolicy::Batch);
        let before = t.message_count();
        rpc.fan_out::<u64, u64>(&mut Ctx::start(), &calls);
        assert_eq!(t.message_count() - before, 2, "one message per destination");
    }

    #[test]
    fn overflowing_batch_response_surfaces_typed_refusal() {
        use blobseer_proto::wire::ByteChain;
        use blobseer_proto::PageBuf;
        // Each response body is ~640 MiB of shared segments (cheap in
        // RAM); two of them overflow the 1 GiB rebatch cap, so the
        // server answers with a typed refusal instead of a batch.
        struct Huge;
        impl Service for Huge {
            fn handle(&self, _ctx: &mut ServerCtx, frame: &Frame) -> Frame {
                let seg = PageBuf::from_vec(vec![0u8; 1 << 24]);
                let mut chain = ByteChain::new();
                for _ in 0..40 {
                    chain.push(seg.clone());
                }
                Frame {
                    method: frame.method,
                    body: chain,
                }
            }
        }
        let t = Arc::new(InProcTransport::new());
        let c = t.add_node();
        let s = t.add_node();
        t.bind(s, Arc::new(Huge));
        let rpc = RpcClient::new(t, c).with_aggregation(AggregationPolicy::Batch);
        let calls: Vec<(NodeId, u16, u64)> = vec![(s, 1, 1), (s, 1, 2)];
        let resps = rpc.fan_out::<u64, u64>(&mut Ctx::start(), &calls);
        for r in &resps {
            let err = r.as_ref().unwrap_err();
            assert!(
                !matches!(err, BlobError::Internal("malformed batch response")),
                "the server's refusal must not be masked as malformed: {err:?}"
            );
        }
    }

    #[test]
    fn calls_to_unbound_node_fail() {
        let (t, c, _, _) = setup();
        let ghost = t.add_node(); // no service bound
        let rpc = RpcClient::new(t, c);
        let err = rpc
            .call::<u64, u64>(&mut Ctx::start(), ghost, 1, &1)
            .unwrap_err();
        assert!(matches!(err, BlobError::Unreachable(_)));
    }
}
