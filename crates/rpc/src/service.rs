//! Server-side dispatch.
//!
//! A [`Service`] is bound to a node and handles decoded frames. The
//! [`dispatch_frame`] helper gives every service batch handling for free:
//! an aggregated frame is unpacked and its sub-frames are handled in
//! order, their responses re-batched — mirroring the original system's
//! streamed RPC.

use crate::frame::Frame;
use blobseer_proto::wire::Wire;
use blobseer_proto::BlobError;

/// Virtual-time context passed to service handlers.
///
/// `vt` is the message's arrival time at the server (nanoseconds of
/// virtual time). Handlers account their processing in two distinct
/// currencies:
///
/// * [`ServerCtx::charge`] — **CPU occupancy**: serializes against every
///   other request on this node (reserved on the node's work register);
/// * [`ServerCtx::charge_latency`] — **response delay only** (I/O wait,
///   replication acknowledgements, …): delays *this* response but
///   overlaps freely with concurrent requests — the distinction that
///   keeps a single expensive-but-pipelined service (like a DHT put)
///   from becoming a false aggregate bottleneck.
pub struct ServerCtx {
    /// Arrival virtual time (ns).
    pub vt: u64,
    /// Accumulated CPU cost (ns) charged by the handler.
    pub charged: u64,
    /// Accumulated response-latency cost (ns) charged by the handler.
    pub charged_latency: u64,
    /// Owned state pinned to this request past the handler's return
    /// (admission permits). Transports drain it with
    /// [`ServerCtx::take_held`] and drop it once the response has left
    /// the server.
    held: Vec<Box<dyn std::any::Any + Send>>,
}

impl std::fmt::Debug for ServerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCtx")
            .field("vt", &self.vt)
            .field("charged", &self.charged)
            .field("charged_latency", &self.charged_latency)
            .field("held", &self.held.len())
            .finish()
    }
}

impl ServerCtx {
    /// Context for a message arriving at `vt`.
    pub fn new(vt: u64) -> Self {
        Self {
            vt,
            charged: 0,
            charged_latency: 0,
            held: Vec::new(),
        }
    }

    /// Pin owned state to this request: it outlives the handler and is
    /// dropped only after the transport has finished sending the
    /// response (or the connection died). Admission permits ride here,
    /// so a request occupies its gate slot for its full server
    /// residency — response transmission included — not just the
    /// handler's CPU burst.
    pub fn hold(&mut self, state: Box<dyn std::any::Any + Send>) {
        self.held.push(state);
    }

    /// Transport hook: detach the pinned state, to be dropped when the
    /// response leaves the server. Transports that deliver the response
    /// by returning (in-process, simulated) simply drop the context.
    pub fn take_held(&mut self) -> Vec<Box<dyn std::any::Any + Send>> {
        std::mem::take(&mut self.held)
    }

    /// Charge `ns` of server CPU to this request (serializing).
    pub fn charge(&mut self, ns: u64) {
        self.charged += ns;
    }

    /// Charge `ns` of non-serializing response delay to this request.
    pub fn charge_latency(&mut self, ns: u64) {
        self.charged_latency += ns;
    }
}

/// A service bound to a (simulated) node.
pub trait Service: Send + Sync {
    /// Handle one non-batch frame, returning the response frame.
    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &'static str {
        "service"
    }
}

/// Shared services dispatch through the pointer, so wrappers like
/// [`crate::AdmissionControlled`] can gate an `Arc`'d service while the
/// owner keeps its white-box handle.
impl<S: Service + ?Sized> Service for std::sync::Arc<S> {
    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        (**self).handle(ctx, frame)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Dispatch a frame, transparently unpacking batches.
pub fn dispatch_frame(svc: &dyn Service, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
    match frame.unbatch() {
        None => svc.handle(ctx, frame),
        Some(Ok(subframes)) => {
            let responses: Vec<Frame> = subframes
                .iter()
                .map(|f| dispatch_frame(svc, ctx, f))
                .collect();
            Frame::batch(responses)
                .unwrap_or_else(|e| error_frame(frame.method, BlobError::Codec(e)))
        }
        Some(Err(_)) => error_frame(frame.method, BlobError::Internal("corrupt batch frame")),
    }
}

/// Build a response frame carrying `Ok(value)`.
pub fn ok_frame<T: Wire>(method: u16, value: &T) -> Frame {
    // Result<T, E> encodes by reference via a manual tag to avoid
    // cloning; payload segments inside `value` stay shared.
    let mut out = blobseer_proto::wire::WireBuf::with_capacity(1 + value.wire_hint());
    out.push(0u8);
    value.encode(&mut out);
    Frame {
        method,
        body: out.finish(),
    }
}

/// Build a response frame carrying `Err(err)`.
pub fn error_frame(method: u16, err: BlobError) -> Frame {
    let body: Result<(), BlobError> = Err(err);
    Frame {
        method,
        body: body.to_chain(),
    }
}

/// Decode a response frame into `Result<T, BlobError>`.
pub fn parse_response<T: Wire>(frame: &Frame) -> Result<T, BlobError> {
    let res: Result<T, BlobError> = Wire::from_chain(&frame.body).map_err(BlobError::Codec)?;
    res
}

/// Convenience: decode a request body, run the handler, encode the
/// `Result` response — the body of every typed service method.
pub fn respond<Req: Wire, Resp: Wire>(
    frame: &Frame,
    handler: impl FnOnce(Req) -> Result<Resp, BlobError>,
) -> Frame {
    match frame.parse::<Req>() {
        Ok(req) => match handler(req) {
            Ok(resp) => ok_frame(frame.method, &resp),
            Err(e) => error_frame(frame.method, e),
        },
        Err(e) => error_frame(frame.method, BlobError::Codec(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles u64 requests; method 9 fails.
    struct Doubler;

    impl Service for Doubler {
        fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
            ctx.charge(100);
            if frame.method == 9 {
                return error_frame(9, BlobError::Internal("nope"));
            }
            respond(frame, |x: u64| Ok(x * 2))
        }
    }

    #[test]
    fn roundtrip_ok_and_err() {
        let svc = Doubler;
        let mut ctx = ServerCtx::new(0);
        let resp = dispatch_frame(&svc, &mut ctx, &Frame::from_msg(1, &21u64));
        assert_eq!(parse_response::<u64>(&resp).unwrap(), 42);
        let resp = dispatch_frame(&svc, &mut ctx, &Frame::from_msg(9, &21u64));
        assert!(parse_response::<u64>(&resp).is_err());
        assert_eq!(ctx.charged, 200);
    }

    #[test]
    fn batches_dispatch_elementwise() {
        let svc = Doubler;
        let mut ctx = ServerCtx::new(5);
        let batch = Frame::batch(vec![
            Frame::from_msg(1, &1u64),
            Frame::from_msg(1, &2u64),
            Frame::from_msg(9, &3u64),
        ])
        .unwrap();
        let resp = dispatch_frame(&svc, &mut ctx, &batch);
        let frames = resp.unbatch().unwrap().unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(parse_response::<u64>(&frames[0]).unwrap(), 2);
        assert_eq!(parse_response::<u64>(&frames[1]).unwrap(), 4);
        assert!(parse_response::<u64>(&frames[2]).is_err());
        assert_eq!(ctx.charged, 300, "each sub-frame charges");
    }

    #[test]
    fn bad_request_body_is_codec_error() {
        let svc = Doubler;
        let mut ctx = ServerCtx::new(0);
        let resp = dispatch_frame(
            &svc,
            &mut ctx,
            &Frame {
                method: 1,
                body: vec![1, 2].into(),
            },
        );
        let err = parse_response::<u64>(&resp).unwrap_err();
        // The codec error is carried as a diagnostic: the wire encoding of
        // `BlobError::Codec` intentionally decodes to `Internal`.
        assert!(
            matches!(err, BlobError::Codec(_) | BlobError::Internal(_)),
            "{err:?}"
        );
    }

    #[test]
    fn ok_frame_matches_result_encoding() {
        // ok_frame must produce exactly what Result::encode would.
        let direct: Result<u64, BlobError> = Ok(7);
        assert_eq!(ok_frame(1, &7u64).body.to_vec(), direct.to_wire());
    }
}
