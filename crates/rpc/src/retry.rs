//! Client-side retry with exponential backoff and deterministic jitter.
//!
//! The admission layer ([`crate::admission`]) answers overload with a
//! typed [`BlobError::Overload`] carrying a retry-after hint; this
//! module is the client half of that contract. A [`RetryPolicy`] decides
//! *whether* an error is worth retrying ([`BlobError::is_retryable`]:
//! `Overload` and `Unreachable` only), *how long* to back off (max of
//! the exponential schedule and the server's hint, jittered downward so
//! synchronized clients desynchronize), and *when to give up* (capped
//! attempts, optional deadline).
//!
//! Retries are only safe on **idempotent** operations — reads, page
//! fetches, and page puts (pages are immutable: re-putting the same key
//! re-stores identical bytes). The version-publish path (`REQUEST_VERSION`
//! / `COMPLETE_WRITE`) is *not* idempotent and must never run under a
//! retry loop; `BlobClient` enforces that split and the policy's tests
//! pin it.
//!
//! Time is injected: [`RetryPolicy::run_with`] takes the sleep function,
//! so unit tests drive a deterministic virtual clock while production
//! callers pass a real sleeper (see [`RetryPolicy::run`]).

use blobseer_proto::BlobError;
use blobseer_util::rng::splitmix64;
use std::time::Duration;

/// A typed retry schedule: exponential backoff with multiplicative
/// decrease-only jitter, capped attempts, capped per-try delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total tries including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Exponential growth factor per retry (≥ 1.0).
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the default for non-idempotent
    /// paths).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// True when the policy allows at least one retry.
    pub fn retries(&self) -> bool {
        self.max_attempts > 1
    }

    /// The backoff to apply after failed attempt number `attempt`
    /// (0-based), or `None` when the policy is exhausted or `err` is
    /// not retryable. The delay is the larger of the exponential
    /// schedule and the server's retry-after hint, jittered downward
    /// deterministically from `seed` and `attempt`.
    pub fn backoff_for(&self, attempt: u32, err: &BlobError) -> Option<Duration> {
        if !err.is_retryable() || attempt + 1 >= self.max_attempts {
            return None;
        }
        let exp = self.base_backoff.as_secs_f64() * self.multiplier.max(1.0).powi(attempt as i32);
        let mut delay = Duration::from_secs_f64(exp.min(self.max_backoff.as_secs_f64()));
        if let Some(hint_ms) = err.retry_after_hint_ms() {
            let hint = Duration::from_millis(hint_ms).min(self.max_backoff);
            delay = delay.max(hint);
        }
        Some(self.jittered(attempt, delay))
    }

    /// Scale `delay` by a deterministic factor in `[1 - jitter, 1]`.
    fn jittered(&self, attempt: u32, delay: Duration) -> Duration {
        let j = self.jitter.clamp(0.0, 1.0);
        if j == 0.0 {
            return delay;
        }
        let mut state = self.seed ^ (u64::from(attempt).wrapping_mul(0xa076_1d64_78bd_642f));
        let draw = splitmix64(&mut state);
        // 53 high bits → uniform in [0, 1).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - j * unit;
        Duration::from_secs_f64(delay.as_secs_f64() * factor)
    }

    /// Run `op` under this policy, sleeping via `sleep` between
    /// attempts. `op` receives the 0-based attempt number. Stops on the
    /// first `Ok`, the first non-retryable error, or policy exhaustion.
    pub fn run_with<T>(
        &self,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T, BlobError>,
    ) -> Result<T, BlobError> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => match self.backoff_for(attempt, &e) {
                    Some(delay) => {
                        sleep(delay);
                        attempt += 1;
                    }
                    None => return Err(e),
                },
            }
        }
    }

    /// [`RetryPolicy::run_with`] using a real [`std::thread::sleep`].
    pub fn run<T>(&self, op: impl FnMut(u32) -> Result<T, BlobError>) -> Result<T, BlobError> {
        self.run_with(
            |d| {
                if d > Duration::ZERO {
                    std::thread::sleep(d);
                }
            },
            op,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn overload(hint: u64) -> BlobError {
        BlobError::Overload {
            retry_after_hint: hint,
        }
    }

    #[test]
    fn caps_attempts_with_deterministic_clock() {
        let p = RetryPolicy {
            max_attempts: 3,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let slept = RefCell::new(Vec::new());
        let tries = RefCell::new(0u32);
        let out: Result<(), _> = p.run_with(
            |d| slept.borrow_mut().push(d),
            |_| {
                *tries.borrow_mut() += 1;
                Err(overload(0))
            },
        );
        assert!(matches!(out, Err(BlobError::Overload { .. })));
        assert_eq!(*tries.borrow(), 3);
        // Exponential, no jitter: 5 ms then 10 ms.
        assert_eq!(
            *slept.borrow(),
            vec![Duration::from_millis(5), Duration::from_millis(10)]
        );
    }

    #[test]
    fn honors_server_hint_when_larger_than_schedule() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let d = p.backoff_for(0, &overload(200)).unwrap();
        assert_eq!(d, Duration::from_millis(200));
        // And the hint is capped by max_backoff.
        let d = p.backoff_for(0, &overload(10_000)).unwrap();
        assert_eq!(d, p.max_backoff);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        for attempt in 0..3 {
            let a = p.backoff_for(attempt, &overload(100)).unwrap();
            let b = p.backoff_for(attempt, &overload(100)).unwrap();
            assert_eq!(a, b, "same seed + attempt → same jitter");
            let full = Duration::from_millis(100);
            assert!(a <= full);
            assert!(a >= Duration::from_millis(50), "jitter floor is 1 - j");
        }
        // Different attempts draw different factors (with overwhelming
        // probability for this seed).
        let d0 = p.backoff_for(0, &overload(1_000_000)).unwrap();
        let d1 = p.backoff_for(1, &overload(1_000_000)).unwrap();
        assert_ne!(d0, d1);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = RetryPolicy::default();
        let tries = RefCell::new(0u32);
        let out: Result<(), _> = p.run_with(
            |_| {},
            |_| {
                *tries.borrow_mut() += 1;
                Err(BlobError::Internal("boom"))
            },
        );
        assert!(matches!(out, Err(BlobError::Internal(_))));
        assert_eq!(*tries.borrow(), 1);
    }

    #[test]
    fn unreachable_is_retryable_but_codec_is_not() {
        let p = RetryPolicy::default();
        assert!(p.backoff_for(0, &BlobError::Unreachable("x")).is_some());
        assert!(p
            .backoff_for(0, &BlobError::Codec(blobseer_proto::CodecError::BadUtf8))
            .is_none());
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retries());
        assert!(p.backoff_for(0, &overload(5)).is_none());
    }

    #[test]
    fn succeeds_after_backoff() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let tries = RefCell::new(0u32);
        let out = p.run_with(
            |_| {},
            |attempt| {
                *tries.borrow_mut() += 1;
                if attempt < 2 {
                    Err(overload(1))
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.unwrap(), 2);
        assert_eq!(*tries.borrow(), 3);
    }
}
