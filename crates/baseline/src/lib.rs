//! # blobseer-baseline
//!
//! Lock-based comparators for the paper's motivating claim: that locking
//! the string — globally or even per page — collapses under concurrent
//! fine-grain access, while the versioned lock-free design does not
//! (paper §I: "without locking the string itself").
//!
//! Three stores implement the common [`ConcurrentBlob`] trait:
//!
//! * [`GlobalLockStore`] — one `RwLock` over the whole string: the
//!   strawman a naive shared file/buffer gives you. Readers block writers
//!   and vice versa for the *entire* blob.
//! * [`ShardedLockStore`] — one `RwLock` per page: the strongest
//!   practical locking design (no versioning, in-place updates). Writers
//!   block readers only on overlapping pages — but *do* block them, and
//!   snapshots are impossible: a reader spanning several pages observes
//!   torn states across pages unless it locks them all (which this store
//!   does, in order, to stay deadlock-free and comparable).
//! * [`LockFreeStore`] — `blobseer_core::LocalEngine` adapted to the
//!   trait: the paper's design in the same in-process regime.
//!
//! The `ablate_lock` bench drives identical mixed read/write workloads
//! through all three.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use blobseer_core::LocalEngine;
use blobseer_proto::{BlobError, Segment};
use parking_lot::RwLock;

/// A concurrent blob store able to serve reads and writes from many
/// threads. `version` semantics differ by design: lock-based stores have
/// no snapshots — they always read the current state and ignore the
/// version argument (documented deviation, part of the point being made).
pub trait ConcurrentBlob: Send + Sync {
    /// Patch `data` at `offset`, returning a monotone write counter.
    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, BlobError>;

    /// Read `seg`, optionally at a specific snapshot version (honoured
    /// only by versioned stores).
    fn read(&self, version: Option<u64>, seg: Segment) -> Result<Vec<u8>, BlobError>;

    /// Latest write counter / version.
    fn latest(&self) -> u64;

    /// Short name for bench tables.
    fn name(&self) -> &'static str;
}

/// One `RwLock` around the whole string.
pub struct GlobalLockStore {
    data: RwLock<(Vec<u8>, u64)>,
    size: u64,
}

impl GlobalLockStore {
    /// Allocate an all-zero string of `size` bytes.
    pub fn new(size: u64) -> Self {
        Self {
            data: RwLock::new((vec![0u8; size as usize], 0)),
            size,
        }
    }
}

impl ConcurrentBlob for GlobalLockStore {
    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, BlobError> {
        let seg = Segment::new(offset, data.len() as u64);
        if seg.end() > self.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "out of bounds",
            });
        }
        let mut g = self.data.write();
        g.0[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        g.1 += 1;
        Ok(g.1)
    }

    fn read(&self, _version: Option<u64>, seg: Segment) -> Result<Vec<u8>, BlobError> {
        if seg.end() > self.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "out of bounds",
            });
        }
        let g = self.data.read();
        Ok(g.0[seg.offset as usize..seg.end() as usize].to_vec())
    }

    fn latest(&self) -> u64 {
        self.data.read().1
    }

    fn name(&self) -> &'static str {
        "global-rwlock"
    }
}

/// One `RwLock` per page; multi-page operations lock their page range in
/// ascending order (two-phase, deadlock-free).
pub struct ShardedLockStore {
    pages: Vec<RwLock<Box<[u8]>>>,
    page_size: u64,
    size: u64,
    counter: parking_lot::Mutex<u64>,
}

impl ShardedLockStore {
    /// Allocate with the given geometry.
    pub fn new(size: u64, page_size: u64) -> Self {
        assert!(size.is_multiple_of(page_size));
        let n = (size / page_size) as usize;
        Self {
            pages: (0..n)
                .map(|_| RwLock::new(vec![0u8; page_size as usize].into_boxed_slice()))
                .collect(),
            page_size,
            size,
            counter: parking_lot::Mutex::new(0),
        }
    }

    fn page_range(&self, seg: &Segment) -> (usize, usize) {
        let first = (seg.offset / self.page_size) as usize;
        let last = ((seg.end() - 1) / self.page_size) as usize;
        (first, last)
    }
}

impl ConcurrentBlob for ShardedLockStore {
    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, BlobError> {
        let seg = Segment::new(offset, data.len() as u64);
        if seg.is_empty() || seg.end() > self.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "out of bounds",
            });
        }
        let (first, last) = self.page_range(&seg);
        // Lock all touched pages in ascending order (atomic multi-page
        // patch; without this, readers observe torn writes).
        let guards: Vec<_> = (first..=last).map(|i| self.pages[i].write()).collect();
        let mut guards = guards;
        for (gi, page_idx) in (first..=last).enumerate() {
            let page_start = page_idx as u64 * self.page_size;
            let copy_start = seg.offset.max(page_start);
            let copy_end = seg.end().min(page_start + self.page_size);
            let dst_off = (copy_start - page_start) as usize;
            let src_off = (copy_start - seg.offset) as usize;
            let len = (copy_end - copy_start) as usize;
            guards[gi][dst_off..dst_off + len].copy_from_slice(&data[src_off..src_off + len]);
        }
        let mut c = self.counter.lock();
        *c += 1;
        Ok(*c)
    }

    fn read(&self, _version: Option<u64>, seg: Segment) -> Result<Vec<u8>, BlobError> {
        if seg.is_empty() || seg.end() > self.size {
            return Err(BlobError::BadSegment {
                segment: seg,
                reason: "out of bounds",
            });
        }
        let (first, last) = self.page_range(&seg);
        let guards: Vec<_> = (first..=last).map(|i| self.pages[i].read()).collect();
        let mut out = vec![0u8; seg.size as usize];
        for (gi, page_idx) in (first..=last).enumerate() {
            let page_start = page_idx as u64 * self.page_size;
            let copy_start = seg.offset.max(page_start);
            let copy_end = seg.end().min(page_start + self.page_size);
            let src_off = (copy_start - page_start) as usize;
            let dst_off = (copy_start - seg.offset) as usize;
            let len = (copy_end - copy_start) as usize;
            out[dst_off..dst_off + len].copy_from_slice(&guards[gi][src_off..src_off + len]);
        }
        Ok(out)
    }

    fn latest(&self) -> u64 {
        *self.counter.lock()
    }

    fn name(&self) -> &'static str {
        "per-page-rwlock"
    }
}

/// The paper's design behind the same trait (versioned, lock-free).
pub struct LockFreeStore {
    engine: LocalEngine,
    blob: blobseer_proto::BlobId,
}

impl LockFreeStore {
    /// Allocate with the given geometry.
    pub fn new(size: u64, page_size: u64) -> Self {
        let engine = LocalEngine::new();
        let blob = engine.alloc(size, page_size).expect("valid geometry");
        Self { engine, blob }
    }

    /// Access the underlying engine (GC in long benches).
    pub fn engine(&self) -> &LocalEngine {
        &self.engine
    }

    /// The blob id.
    pub fn blob(&self) -> blobseer_proto::BlobId {
        self.blob
    }
}

impl ConcurrentBlob for LockFreeStore {
    fn write(&self, offset: u64, data: &[u8]) -> Result<u64, BlobError> {
        self.engine.write(self.blob, offset, data)
    }

    fn read(&self, version: Option<u64>, seg: Segment) -> Result<Vec<u8>, BlobError> {
        Ok(self.engine.read(self.blob, version, seg)?.0)
    }

    fn latest(&self) -> u64 {
        self.engine.latest(self.blob).unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "blobseer-lockfree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    const PAGE: u64 = 256;
    const TOTAL: u64 = PAGE * 16;

    fn all_stores() -> Vec<Arc<dyn ConcurrentBlob>> {
        vec![
            Arc::new(GlobalLockStore::new(TOTAL)),
            Arc::new(ShardedLockStore::new(TOTAL, PAGE)),
            Arc::new(LockFreeStore::new(TOTAL, PAGE)),
        ]
    }

    #[test]
    fn functional_equivalence_on_latest_reads() {
        for store in all_stores() {
            let w1 = store.write(0, &vec![1u8; PAGE as usize]).unwrap();
            let w2 = store.write(PAGE, &vec![2u8; PAGE as usize]).unwrap();
            assert!(w2 > w1, "{}", store.name());
            let got = store.read(None, Segment::new(0, 2 * PAGE)).unwrap();
            assert!(
                got[..PAGE as usize].iter().all(|&b| b == 1),
                "{}",
                store.name()
            );
            assert!(
                got[PAGE as usize..].iter().all(|&b| b == 2),
                "{}",
                store.name()
            );
            assert_eq!(store.latest(), 2);
            assert!(store.read(None, Segment::new(TOTAL, 1)).is_err());
        }
    }

    #[test]
    fn lock_free_store_honours_versions_lock_stores_do_not() {
        let lf = LockFreeStore::new(TOTAL, PAGE);
        lf.write(0, &vec![1u8; PAGE as usize]).unwrap();
        lf.write(0, &vec![2u8; PAGE as usize]).unwrap();
        assert!(lf
            .read(Some(1), Segment::new(0, PAGE))
            .unwrap()
            .iter()
            .all(|&b| b == 1));
        assert!(lf
            .read(Some(2), Segment::new(0, PAGE))
            .unwrap()
            .iter()
            .all(|&b| b == 2));

        let gl = GlobalLockStore::new(TOTAL);
        gl.write(0, &vec![1u8; PAGE as usize]).unwrap();
        gl.write(0, &vec![2u8; PAGE as usize]).unwrap();
        // Lock-based stores always see the newest state.
        assert!(gl
            .read(Some(1), Segment::new(0, PAGE))
            .unwrap()
            .iter()
            .all(|&b| b == 2));
    }

    #[test]
    fn no_torn_multi_page_reads_under_concurrency() {
        // Writers alternate the whole region between two fills; readers
        // must never observe a mix (each store must make multi-page ops
        // atomic — the sharded store via ordered lock acquisition, the
        // lock-free store via snapshots).
        for store in all_stores() {
            let name = store.name();
            store.write(0, &vec![0u8; (4 * PAGE) as usize]).unwrap();
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let w = {
                let s = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut x = 0u8;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        x = x.wrapping_add(1);
                        s.write(0, &vec![x; (4 * PAGE) as usize]).unwrap();
                    }
                })
            };
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let s = Arc::clone(&store);
                    thread::spawn(move || {
                        for _ in 0..300 {
                            let buf = s.read(None, Segment::new(0, 4 * PAGE)).unwrap();
                            let first = buf[0];
                            assert!(buf.iter().all(|&b| b == first), "torn read in {}", first);
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join().unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            w.join().unwrap();
            let _ = name;
        }
    }

    #[test]
    fn sharded_store_partial_page_writes() {
        let s = ShardedLockStore::new(TOTAL, PAGE);
        // Unaligned write spanning a page boundary.
        s.write(PAGE - 10, &[7u8; 20]).unwrap();
        let got = s.read(None, Segment::new(PAGE - 10, 20)).unwrap();
        assert!(got.iter().all(|&b| b == 7));
        let before = s.read(None, Segment::new(0, PAGE - 10)).unwrap();
        assert!(before.iter().all(|&b| b == 0));
    }
}
