//! Property tests for power-of-two-choices page placement: random
//! provider fleets, page counts and replication factors; the plan must
//! never oversubscribe any provider's projected capacity and never place
//! two replicas of one page on the same provider.

use blobseer_proto::messages::ProviderStats;
use blobseer_proto::ProviderId;
use blobseer_provider::{ProviderManagerService, Strategy as Placement};
use blobseer_simnet::ServiceCosts;
use proptest::prelude::*;

const PAGE_BYTES: u64 = 4096;

fn arb_capacities() -> impl Strategy<Value = Vec<u64>> {
    // 2..=12 providers, each fitting 0..=64 pages of projected capacity.
    proptest::collection::vec((0u64..=64).prop_map(|pages| pages * PAGE_BYTES), 2..13)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn p2c_respects_capacity_and_replica_distinctness(
        capacities in arb_capacities(),
        pages in 1u64..48,
        replication in 1u32..4,
        seed in any::<u64>(),
        reported_pages in 0u64..16,
    ) {
        let m = ProviderManagerService::new(Placement::PowerOfTwo, seed, ServiceCosts::zero());
        m.set_page_size_hint(PAGE_BYTES);
        for (i, &cap) in capacities.iter().enumerate() {
            m.register(ProviderId(i as u32), cap);
        }
        // Some providers report pre-existing usage via heartbeat.
        m.heartbeat(
            ProviderId(0),
            ProviderStats {
                pages: reported_pages,
                bytes: reported_pages * PAGE_BYTES,
                heap_bytes: reported_pages * PAGE_BYTES,
                mapped_bytes: 0,
                dead_bytes: 0,
            },
        );

        let total_free: u64 = (0..capacities.len())
            .map(|i| m.projection(ProviderId(i as u32)).unwrap())
            .map(|p| p.capacity.saturating_sub(p.reported))
            .sum();

        match m.plan_write(pages, replication) {
            Ok(plan) => {
                prop_assert_eq!(plan.targets.len(), pages as usize);
                let repl = (replication as usize).min(capacities.len());
                for t in &plan.targets {
                    // Replication clamped to the fleet size, replicas
                    // pairwise distinct.
                    prop_assert_eq!(t.len(), repl);
                    let mut u = t.clone();
                    u.sort();
                    u.dedup();
                    prop_assert_eq!(u.len(), repl, "duplicate replica in {:?}", t);
                }
                // No provider's projection may exceed its capacity:
                // every reservation was CAS-checked.
                for (i, _) in capacities.iter().enumerate() {
                    let p = m.projection(ProviderId(i as u32)).unwrap();
                    prop_assert!(
                        p.in_flight <= p.capacity.saturating_sub(p.reported),
                        "provider {} oversubscribed: {:?}",
                        i,
                        p
                    );
                }
            }
            Err(_) => {
                // With replication 1 a refusal is only legitimate when
                // the demand could not have fit in the fleet's total
                // projected capacity. (With replication > 1 the
                // per-page distinctness constraint can make a plan
                // infeasible even below total capacity, so no such
                // bound holds.)
                if replication == 1 {
                    let demanded = pages * PAGE_BYTES;
                    prop_assert!(
                        demanded > total_free,
                        "refused a plan that fits: demanded {} of {} free",
                        demanded,
                        total_free
                    );
                }
                // Even a refused plan must leave every projection sane.
                for (i, _) in capacities.iter().enumerate() {
                    let p = m.projection(ProviderId(i as u32)).unwrap();
                    prop_assert!(p.in_flight <= p.capacity.saturating_sub(p.reported));
                }
            }
        }
    }

    #[test]
    fn p2c_prefers_the_freer_provider(seed in any::<u64>()) {
        // Two providers, one nearly full: the plan must lean heavily on
        // the free one (two-choice sampling sees both every time).
        let m = ProviderManagerService::new(Placement::PowerOfTwo, seed, ServiceCosts::zero());
        m.set_page_size_hint(PAGE_BYTES);
        m.register(ProviderId(0), 1024 * PAGE_BYTES);
        m.register(ProviderId(1), 1024 * PAGE_BYTES);
        m.heartbeat(
            ProviderId(1),
            ProviderStats {
                pages: 1000,
                bytes: 1000 * PAGE_BYTES,
                heap_bytes: 1000 * PAGE_BYTES,
                mapped_bytes: 0,
                dead_bytes: 0,
            },
        );
        let plan = m.plan_write(16, 1).unwrap();
        let on_free = plan
            .targets
            .iter()
            .filter(|t| t[0] == ProviderId(0))
            .count();
        prop_assert!(
            on_free >= 12,
            "free provider should dominate placement: {} of 16",
            on_free
        );
    }
}
