//! The provider manager (paper §III.A).
//!
//! "On each WRITE request, the provider manager decides which providers
//! should be used to store the newly generated pages, based on some
//! strategy that favors global load balancing." It also issues the unique
//! write ids under which pages are stored before their version exists.
//!
//! Three allocation strategies are provided; the default is
//! [`Strategy::LeastLoaded`], which uses registered capacity, heartbeat
//! usage reports and an in-flight assignment counter.

use blobseer_proto::messages::{
    method, Heartbeat, PlanWrite, ProviderStats, RegisterProvider, WritePlan,
};
use blobseer_proto::{BlobError, ProviderId, WriteId};
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_util::rng::splitmix64;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Page-to-provider allocation strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Cycle through providers (ignores load).
    RoundRobin,
    /// Prefer the provider with the most free capacity, counting both
    /// heartbeat-reported usage and not-yet-reported in-flight
    /// assignments.
    #[default]
    LeastLoaded,
    /// Uniform random (seeded; useful as a baseline in ablations).
    Random,
}

#[derive(Debug)]
struct ProviderEntry {
    id: ProviderId,
    capacity: u64,
    reported: ProviderStats,
    /// Bytes assigned by plans since the last heartbeat.
    in_flight: u64,
    alive: bool,
}

impl ProviderEntry {
    fn projected_free(&self) -> u64 {
        self.capacity
            .saturating_sub(self.reported.bytes + self.in_flight)
    }
}

/// The provider manager service.
pub struct ProviderManagerService {
    providers: RwLock<Vec<ProviderEntry>>,
    next_write: AtomicU64,
    cursor: AtomicUsize,
    rng_state: AtomicU64,
    strategy: Strategy,
    /// Bytes a single page occupies, used to project in-flight load.
    page_size_hint: AtomicU64,
    costs: ServiceCosts,
}

impl ProviderManagerService {
    /// Empty manager.
    pub fn new(strategy: Strategy, seed: u64, costs: ServiceCosts) -> Self {
        Self {
            providers: RwLock::new(Vec::new()),
            next_write: AtomicU64::new(1),
            cursor: AtomicUsize::new(0),
            rng_state: AtomicU64::new(seed | 1),
            strategy,
            page_size_hint: AtomicU64::new(64 * 1024),
            costs,
        }
    }

    /// Tell the manager the page size so in-flight projections are right.
    pub fn set_page_size_hint(&self, bytes: u64) {
        self.page_size_hint.store(bytes.max(1), Ordering::Relaxed);
    }

    /// Registered provider count.
    pub fn provider_count(&self) -> usize {
        self.providers.read().len()
    }

    /// Register (idempotent on re-register with new capacity).
    pub fn register(&self, provider: ProviderId, capacity: u64) {
        let mut g = self.providers.write();
        match g.iter_mut().find(|p| p.id == provider) {
            Some(p) => {
                p.capacity = capacity;
                p.alive = true;
            }
            None => g.push(ProviderEntry {
                id: provider,
                capacity,
                reported: ProviderStats::default(),
                in_flight: 0,
                alive: true,
            }),
        }
    }

    /// Fold in a heartbeat: reported usage replaces the in-flight
    /// projection accumulated since the previous report.
    pub fn heartbeat(&self, provider: ProviderId, stats: ProviderStats) {
        let mut g = self.providers.write();
        if let Some(p) = g.iter_mut().find(|p| p.id == provider) {
            p.reported = stats;
            p.in_flight = 0;
            p.alive = true;
        }
    }

    /// Mark a provider dead (e.g., failure detector input); it stops
    /// receiving assignments until it re-registers or heartbeats.
    pub fn mark_dead(&self, provider: ProviderId) {
        let mut g = self.providers.write();
        if let Some(p) = g.iter_mut().find(|p| p.id == provider) {
            p.alive = false;
        }
    }

    /// Plan a write: a fresh write id plus, for each of `pages` pages,
    /// `replication` distinct providers (primary first).
    pub fn plan_write(&self, pages: u64, replication: u32) -> Result<WritePlan, BlobError> {
        let write = WriteId(self.next_write.fetch_add(1, Ordering::Relaxed));
        let page_bytes = self.page_size_hint.load(Ordering::Relaxed);
        let mut g = self.providers.write();
        let alive: Vec<usize> = (0..g.len()).filter(|&i| g[i].alive).collect();
        if alive.is_empty() {
            return Err(BlobError::Unreachable("no data providers registered"));
        }
        let replication = (replication.max(1) as usize).min(alive.len());
        let mut targets = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let mut page_targets = Vec::with_capacity(replication);
            for _ in 0..replication {
                let pick = match self.strategy {
                    Strategy::RoundRobin => {
                        let mut k = self.cursor.fetch_add(1, Ordering::Relaxed);
                        // Skip providers already chosen for this page.
                        let mut tries = 0;
                        loop {
                            let idx = alive[k % alive.len()];
                            if !page_targets.contains(&g[idx].id) || tries >= alive.len() {
                                break idx;
                            }
                            k += 1;
                            tries += 1;
                        }
                    }
                    Strategy::LeastLoaded => {
                        let mut best: Option<usize> = None;
                        for &idx in &alive {
                            if page_targets.contains(&g[idx].id) {
                                continue;
                            }
                            let better = match best {
                                None => true,
                                Some(b) => g[idx].projected_free() > g[b].projected_free(),
                            };
                            if better {
                                best = Some(idx);
                            }
                        }
                        best.ok_or(BlobError::Internal("replication exceeds providers"))?
                    }
                    Strategy::Random => {
                        let mut s = self.rng_state.load(Ordering::Relaxed);
                        let r = splitmix64(&mut s);
                        self.rng_state.store(s, Ordering::Relaxed);
                        let mut k = r as usize;
                        let mut tries = 0;
                        loop {
                            let idx = alive[k % alive.len()];
                            if !page_targets.contains(&g[idx].id) || tries >= alive.len() {
                                break idx;
                            }
                            k += 1;
                            tries += 1;
                        }
                    }
                };
                g[pick].in_flight += page_bytes;
                page_targets.push(g[pick].id);
            }
            targets.push(page_targets);
        }
        Ok(WritePlan { write, targets })
    }

    /// Current provider ids (diagnostics).
    pub fn provider_ids(&self) -> Vec<ProviderId> {
        self.providers.read().iter().map(|p| p.id).collect()
    }
}

impl Service for ProviderManagerService {
    fn name(&self) -> &'static str {
        "provider-manager"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        ctx.charge(self.costs.manager_query_ns);
        match frame.method {
            method::REGISTER_PROVIDER => respond(frame, |m: RegisterProvider| {
                self.register(m.provider, m.capacity);
                Ok(())
            }),
            method::HEARTBEAT => respond(frame, |m: Heartbeat| {
                self.heartbeat(m.provider, m.stats);
                Ok(())
            }),
            method::PLAN_WRITE => respond(frame, |m: PlanWrite| {
                self.plan_write(m.pages, m.replication)
            }),
            method::LIST_PROVIDERS => respond(frame, |_: ()| Ok(self.provider_ids())),
            other => error_frame(other, BlobError::Internal("unknown manager method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(strategy: Strategy) -> ProviderManagerService {
        let m = ProviderManagerService::new(strategy, 42, ServiceCosts::zero());
        for i in 0..4 {
            m.register(ProviderId(i), 1 << 30);
        }
        m
    }

    #[test]
    fn plan_issues_unique_write_ids() {
        let m = mgr(Strategy::RoundRobin);
        let a = m.plan_write(2, 1).unwrap();
        let b = m.plan_write(2, 1).unwrap();
        assert_ne!(a.write, b.write);
        assert_eq!(a.targets.len(), 2);
        assert_eq!(a.targets[0].len(), 1);
    }

    #[test]
    fn round_robin_spreads_pages() {
        let m = mgr(Strategy::RoundRobin);
        let plan = m.plan_write(8, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    #[test]
    fn least_loaded_prefers_free_capacity() {
        let m = mgr(Strategy::LeastLoaded);
        m.set_page_size_hint(1024);
        // Provider 0 reports heavy usage.
        m.heartbeat(
            ProviderId(0),
            ProviderStats {
                pages: 1000,
                bytes: 1 << 29,
            },
        );
        let plan = m.plan_write(6, 1).unwrap();
        assert!(
            plan.targets.iter().all(|t| t[0] != ProviderId(0)),
            "loaded provider must be avoided: {:?}",
            plan.targets
        );
    }

    #[test]
    fn in_flight_assignments_count_as_load() {
        let m = mgr(Strategy::LeastLoaded);
        m.set_page_size_hint(1 << 20);
        // Without heartbeats, repeated plans must still spread across
        // providers because in-flight bytes pile up.
        let plan = m.plan_write(8, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn replication_targets_are_distinct() {
        let m = mgr(Strategy::LeastLoaded);
        let plan = m.plan_write(5, 3).unwrap();
        for t in &plan.targets {
            assert_eq!(t.len(), 3);
            let mut u = t.clone();
            u.sort();
            u.dedup();
            assert_eq!(u.len(), 3, "replicas must be distinct: {t:?}");
        }
    }

    #[test]
    fn replication_clamped_and_dead_skipped() {
        let m = mgr(Strategy::LeastLoaded);
        m.mark_dead(ProviderId(2));
        m.mark_dead(ProviderId(3));
        let plan = m.plan_write(2, 4).unwrap();
        for t in &plan.targets {
            assert_eq!(t.len(), 2, "clamped to alive providers");
            assert!(!t.contains(&ProviderId(2)));
            assert!(!t.contains(&ProviderId(3)));
        }
        // Heartbeat revives.
        m.heartbeat(ProviderId(2), ProviderStats::default());
        let plan = m.plan_write(1, 3).unwrap();
        assert_eq!(plan.targets[0].len(), 3);
    }

    #[test]
    fn no_providers_is_an_error() {
        let m = ProviderManagerService::new(Strategy::LeastLoaded, 1, ServiceCosts::zero());
        assert!(m.plan_write(1, 1).is_err());
    }

    #[test]
    fn random_strategy_is_seeded_and_covers() {
        let m = mgr(Strategy::Random);
        let plan = m.plan_write(64, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 4), "roughly uniform: {counts:?}");
    }

    #[test]
    fn register_is_idempotent() {
        let m = mgr(Strategy::LeastLoaded);
        m.register(ProviderId(0), 42);
        assert_eq!(m.provider_count(), 4);
    }
}
