//! The provider manager (paper §III.A).
//!
//! "On each WRITE request, the provider manager decides which providers
//! should be used to store the newly generated pages, based on some
//! strategy that favors global load balancing." It also issues the unique
//! write ids under which pages are stored before their version exists.
//!
//! **Lock discipline (PR 2).** `plan_write` is on every WRITE's critical
//! path, so it holds no lock: the provider roster is an [`RcuCell`]
//! snapshot (membership changes — register of a *new* provider — republish
//! it; they are O(cluster size) over a process lifetime), and all mutable
//! per-provider state (capacity, heartbeat-reported usage, in-flight
//! projection, liveness) lives in atomics inside the shared
//! [`ProviderSlot`]s, so `heartbeat` and `mark_dead` are O(1) wait-free
//! index lookups plus atomic stores — no write lock, no O(n) scan.
//! Capacity is *reserved* with a compare-and-swap loop
//! (`ProviderSlot::try_reserve`), so concurrent planners can never
//! oversubscribe a provider's projected capacity.
//!
//! Four allocation strategies are provided; the default is
//! [`Strategy::PowerOfTwo`] — sample two distinct alive candidates, place
//! on the one with more projected free capacity — which gets within a
//! constant factor of least-loaded balance at O(1) cost per replica
//! instead of an O(n) scan. `LeastLoaded` (exact scan), `RoundRobin` and
//! `Random` are preserved for ablations and tests.
//!
//! The pre-PR-2 serialized regime survives as an ablation: with
//! [`blobseer_util::lockmeter::set_serialized_control_plane`] enabled,
//! every `plan_write` funnels through one global mutex (charged to the
//! lock meter as a serializing acquisition) so the `pr2_lockfree` bench
//! can measure the contention cliff it removes.

use blobseer_proto::messages::{
    method, Heartbeat, PlanWrite, ProviderStats, RegisterProvider, WritePlan,
};
use blobseer_proto::{BlobError, ProviderId, WriteId};
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_util::rng::splitmix64;
use blobseer_util::{lockmeter, FxHashMap, RcuCell};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Page-to-provider allocation strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Cycle through providers (ignores load).
    RoundRobin,
    /// Exact scan for the provider with the most projected free capacity
    /// (heartbeat-reported usage plus not-yet-reported in-flight
    /// assignments). O(providers) per replica.
    LeastLoaded,
    /// Uniform random (seeded; useful as a baseline in ablations).
    Random,
    /// Power of two choices: sample two distinct alive candidates, place
    /// on the one with more projected free capacity. O(1) per replica
    /// with near-least-loaded balance; never oversubscribes projected
    /// capacity (reservations are CAS-checked).
    #[default]
    PowerOfTwo,
}

/// One registered provider: immutable identity plus atomically updated
/// load state, shared between roster snapshots across membership changes.
#[derive(Debug)]
pub struct ProviderSlot {
    id: ProviderId,
    capacity: AtomicU64,
    /// Heartbeat-reported stored bytes.
    reported: AtomicU64,
    /// Bytes assigned by plans since the last heartbeat.
    in_flight: AtomicU64,
    alive: AtomicBool,
}

impl ProviderSlot {
    fn new(id: ProviderId, capacity: u64) -> Self {
        Self {
            id,
            capacity: AtomicU64::new(capacity),
            reported: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        }
    }

    /// Capacity minus reported usage minus in-flight assignments.
    pub fn projected_free(&self) -> u64 {
        self.capacity
            .load(Ordering::Relaxed)
            .saturating_sub(self.reported.load(Ordering::Relaxed))
            .saturating_sub(self.in_flight.load(Ordering::Relaxed))
    }

    /// Reserve `bytes` of projected capacity with a CAS loop; fails (and
    /// reserves nothing) when the projection would exceed capacity. This
    /// is what makes concurrent lock-free planners unable to
    /// oversubscribe a provider.
    fn try_reserve(&self, bytes: u64) -> bool {
        let cap = self.capacity.load(Ordering::Relaxed);
        let reported = self.reported.load(Ordering::Relaxed);
        let mut in_flight = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cap.saturating_sub(reported).saturating_sub(in_flight) < bytes {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                in_flight,
                in_flight + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => in_flight = actual,
            }
        }
    }

    /// Return a reservation made by [`ProviderSlot::try_reserve`] (or a
    /// plain in-flight charge) when a plan fails midway. Saturating: a
    /// concurrent heartbeat may already have zeroed the projection.
    fn release(&self, bytes: u64) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }
}

/// Diagnostic projection of one provider's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProviderProjection {
    /// Registered capacity, bytes.
    pub capacity: u64,
    /// Heartbeat-reported stored bytes.
    pub reported: u64,
    /// Bytes assigned by plans since the last heartbeat.
    pub in_flight: u64,
    /// Whether the provider is eligible for assignments.
    pub alive: bool,
}

/// An immutable snapshot of the provider membership. Slot *state* mutates
/// through atomics; the snapshot itself is replaced only when a new
/// provider registers.
#[derive(Default)]
struct Roster {
    slots: Vec<Arc<ProviderSlot>>,
    by_id: FxHashMap<ProviderId, usize>,
}

impl Roster {
    fn with(&self, slot: Arc<ProviderSlot>) -> Roster {
        let mut slots = self.slots.clone();
        let mut by_id = self.by_id.clone();
        by_id.insert(slot.id, slots.len());
        slots.push(slot);
        Roster { slots, by_id }
    }
}

/// The provider manager service.
pub struct ProviderManagerService {
    roster: RcuCell<Roster>,
    next_write: AtomicU64,
    cursor: AtomicUsize,
    rng_state: AtomicU64,
    strategy: Strategy,
    /// Bytes a single page occupies, used to project in-flight load.
    page_size_hint: AtomicU64,
    /// Engaged only under the serialized-control-plane ablation.
    serial: Mutex<()>,
    costs: ServiceCosts,
}

impl ProviderManagerService {
    /// Empty manager.
    pub fn new(strategy: Strategy, seed: u64, costs: ServiceCosts) -> Self {
        Self {
            roster: RcuCell::new(Roster::default()),
            next_write: AtomicU64::new(1),
            cursor: AtomicUsize::new(0),
            rng_state: AtomicU64::new(seed | 1),
            strategy,
            page_size_hint: AtomicU64::new(64 * 1024),
            // lint: allow(unmetered-lock) — serialized-control-plane ablation mutex;
            // record_serializing is charged at the lock() site when engaged
            serial: Mutex::new(()),
            costs,
        }
    }

    /// Tell the manager the page size so in-flight projections are right.
    pub fn set_page_size_hint(&self, bytes: u64) {
        self.page_size_hint.store(bytes.max(1), Ordering::Relaxed);
    }

    /// Registered provider count (alive or dead).
    pub fn provider_count(&self) -> usize {
        self.roster.load().slots.len()
    }

    /// Register (idempotent on re-register with new capacity). Known
    /// providers are revived in place — two atomic stores, no snapshot
    /// churn; only a *new* provider publishes a new roster snapshot.
    pub fn register(&self, provider: ProviderId, capacity: u64) {
        let roster = self.roster.load();
        if let Some(&i) = roster.by_id.get(&provider) {
            let slot = &roster.slots[i];
            slot.capacity.store(capacity, Ordering::Relaxed);
            slot.alive.store(true, Ordering::Relaxed);
            return;
        }
        // New membership: publish a new snapshot. The update lock
        // serializes concurrent registrations (cold path).
        lockmeter::record_sharded();
        self.roster.update(|cur| {
            if let Some(&i) = cur.by_id.get(&provider) {
                // Lost a registration race; revive in place.
                let slot = &cur.slots[i];
                slot.capacity.store(capacity, Ordering::Relaxed);
                slot.alive.store(true, Ordering::Relaxed);
                return (cur.with_none(), ());
            }
            (
                cur.with(Arc::new(ProviderSlot::new(provider, capacity))),
                (),
            )
        });
    }

    /// Fold in a heartbeat: reported usage replaces the in-flight
    /// projection accumulated since the previous report. O(1), wait-free.
    ///
    /// What is reported is [`ProviderStats::reserved_bytes`] — the
    /// backing-byte footprint (heap plus append-only mapped log,
    /// headers included), not the logical stored bytes — so
    /// `ProviderSlot::try_reserve`'s capacity CAS stays truthful for
    /// a backend whose log retains removed pages.
    pub fn heartbeat(&self, provider: ProviderId, stats: ProviderStats) {
        let roster = self.roster.load();
        if let Some(&i) = roster.by_id.get(&provider) {
            let slot = &roster.slots[i];
            slot.reported
                .store(stats.reserved_bytes(), Ordering::Relaxed);
            slot.in_flight.store(0, Ordering::Relaxed);
            slot.alive.store(true, Ordering::Relaxed);
        }
    }

    /// Mark a provider dead (e.g., failure detector input); it stops
    /// receiving assignments until it re-registers or heartbeats. O(1),
    /// wait-free.
    pub fn mark_dead(&self, provider: ProviderId) {
        let roster = self.roster.load();
        if let Some(&i) = roster.by_id.get(&provider) {
            roster.slots[i].alive.store(false, Ordering::Relaxed);
        }
    }

    /// Raise the write-id allocator to at least `floor`. Cold-restart
    /// replay: write ids already present in replayed page logs or in
    /// the recovered version history must never be handed out again —
    /// a reused id would let a fresh write's pages collide with
    /// durable pages under the same `PageKey`, corrupting published
    /// versions that still reference them. Monotonic and wait-free.
    pub fn advance_write_ids(&self, floor: u64) {
        self.next_write.fetch_max(floor, Ordering::Relaxed);
    }

    /// Diagnostic view of one provider's projected load.
    pub fn projection(&self, provider: ProviderId) -> Option<ProviderProjection> {
        let roster = self.roster.load();
        let slot = &roster.slots[*roster.by_id.get(&provider)?];
        Some(ProviderProjection {
            capacity: slot.capacity.load(Ordering::Relaxed),
            reported: slot.reported.load(Ordering::Relaxed),
            in_flight: slot.in_flight.load(Ordering::Relaxed),
            alive: slot.alive.load(Ordering::Relaxed),
        })
    }

    fn next_rand(&self) -> u64 {
        // fetch_add gives every caller a distinct state to mix, so the
        // stream stays race-free without a lock.
        let mut s = self
            .rng_state
            .fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
        splitmix64(&mut s)
    }

    /// Plan a write: a fresh write id plus, for each of `pages` pages,
    /// `replication` distinct providers (primary first). Holds no lock in
    /// the default regime — the roster is an RCU snapshot and every
    /// capacity reservation is a CAS.
    pub fn plan_write(&self, pages: u64, replication: u32) -> Result<WritePlan, BlobError> {
        let _serial = if lockmeter::serialized_control_plane() {
            lockmeter::record_serializing();
            Some(self.serial.lock())
        } else {
            None
        };
        let write = WriteId(self.next_write.fetch_add(1, Ordering::Relaxed));
        let page_bytes = self.page_size_hint.load(Ordering::Relaxed);
        let roster = self.roster.load();
        let slots = &roster.slots;
        let alive: Vec<usize> = (0..slots.len())
            .filter(|&i| slots[i].alive.load(Ordering::Relaxed))
            .collect();
        if alive.is_empty() {
            return Err(BlobError::Unreachable("no data providers registered"));
        }
        let replication = (replication.max(1) as usize).min(alive.len());
        let mut targets = Vec::with_capacity(pages as usize);
        // Every successful pick reserved `page_bytes` of in-flight
        // projection on its slot; remember them so a plan that fails
        // midway releases what it reserved instead of leaving phantom
        // load until the next heartbeat.
        let mut reserved: Vec<usize> = Vec::new();
        let mut plan = || -> Result<(), BlobError> {
            for _ in 0..pages {
                let mut page_targets: Vec<ProviderId> = Vec::with_capacity(replication);
                for _ in 0..replication {
                    let pick = match self.strategy {
                        Strategy::RoundRobin => {
                            let k = self.cursor.fetch_add(1, Ordering::Relaxed);
                            let mut pick = alive[k % alive.len()];
                            for j in 0..=alive.len() {
                                let idx = alive[(k + j) % alive.len()];
                                if !page_targets.contains(&slots[idx].id) {
                                    pick = idx;
                                    break;
                                }
                            }
                            slots[pick]
                                .in_flight
                                .fetch_add(page_bytes, Ordering::Relaxed);
                            pick
                        }
                        Strategy::Random => {
                            let k = self.next_rand() as usize;
                            let mut pick = alive[k % alive.len()];
                            for j in 0..=alive.len() {
                                let idx = alive[(k + j) % alive.len()];
                                if !page_targets.contains(&slots[idx].id) {
                                    pick = idx;
                                    break;
                                }
                            }
                            slots[pick]
                                .in_flight
                                .fetch_add(page_bytes, Ordering::Relaxed);
                            pick
                        }
                        Strategy::LeastLoaded => {
                            let mut best: Option<usize> = None;
                            for &idx in &alive {
                                if page_targets.contains(&slots[idx].id) {
                                    continue;
                                }
                                let better = match best {
                                    None => true,
                                    Some(b) => {
                                        slots[idx].projected_free() > slots[b].projected_free()
                                    }
                                };
                                if better {
                                    best = Some(idx);
                                }
                            }
                            let pick =
                                best.ok_or(BlobError::Internal("replication exceeds providers"))?;
                            slots[pick]
                                .in_flight
                                .fetch_add(page_bytes, Ordering::Relaxed);
                            pick
                        }
                        Strategy::PowerOfTwo => {
                            self.pick_power_of_two(slots, &alive, &page_targets, page_bytes)?
                        }
                    };
                    reserved.push(pick);
                    page_targets.push(slots[pick].id);
                }
                targets.push(page_targets);
            }
            Ok(())
        };
        if let Err(e) = plan() {
            for idx in reserved {
                slots[idx].release(page_bytes);
            }
            return Err(e);
        }
        Ok(WritePlan { write, targets })
    }

    /// Sample two distinct eligible candidates and reserve on the one
    /// with more projected free capacity; falls back to an exact scan
    /// (still lock-free) when sampling keeps hitting ineligible or full
    /// providers, and errors only when *no* eligible provider can fit the
    /// page.
    fn pick_power_of_two(
        &self,
        slots: &[Arc<ProviderSlot>],
        alive: &[usize],
        page_targets: &[ProviderId],
        page_bytes: u64,
    ) -> Result<usize, BlobError> {
        let eligible = |idx: usize| !page_targets.contains(&slots[idx].id);
        // Sampling phase: a handful of attempts, each O(1). The two
        // candidates are drawn *without* replacement — colliding samples
        // would skip the load comparison half the time on small fleets.
        for _ in 0..4 {
            let ia = self.next_rand() as usize % alive.len();
            let ib = if alive.len() > 1 {
                (ia + 1 + self.next_rand() as usize % (alive.len() - 1)) % alive.len()
            } else {
                ia
            };
            let (a, b) = (alive[ia], alive[ib]);
            let pick = match (eligible(a), eligible(b) && b != a) {
                (true, true) => {
                    if slots[a].projected_free() >= slots[b].projected_free() {
                        a
                    } else {
                        b
                    }
                }
                (true, false) => a,
                (false, true) => b,
                (false, false) => continue,
            };
            if slots[pick].try_reserve(page_bytes) {
                return Ok(pick);
            }
        }
        // Fallback: exact scan over projected free capacity, retrying
        // while concurrent planners race us for the last bytes.
        loop {
            let mut best: Option<usize> = None;
            for &idx in alive {
                if !eligible(idx) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => slots[idx].projected_free() > slots[b].projected_free(),
                };
                if better {
                    best = Some(idx);
                }
            }
            let pick = best.ok_or(BlobError::Internal("replication exceeds providers"))?;
            if slots[pick].try_reserve(page_bytes) {
                return Ok(pick);
            }
            if slots[pick].projected_free() < page_bytes {
                // Even the best candidate cannot fit the page.
                return Err(BlobError::Internal("provider capacity exhausted"));
            }
        }
    }

    /// Current provider ids (diagnostics).
    pub fn provider_ids(&self) -> Vec<ProviderId> {
        self.roster.load().slots.iter().map(|s| s.id).collect()
    }
}

impl Roster {
    /// Identity clone for the lost-registration-race arm of
    /// [`ProviderManagerService::register`] (slots are shared `Arc`s, so
    /// this copies two small vectors, not provider state).
    fn with_none(&self) -> Roster {
        Roster {
            slots: self.slots.clone(),
            by_id: self.by_id.clone(),
        }
    }
}

impl Service for ProviderManagerService {
    fn name(&self) -> &'static str {
        "provider-manager"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        ctx.charge(self.costs.manager_query_ns);
        match frame.method {
            method::REGISTER_PROVIDER => respond(frame, |m: RegisterProvider| {
                self.register(m.provider, m.capacity);
                Ok(())
            }),
            method::HEARTBEAT => respond(frame, |m: Heartbeat| {
                self.heartbeat(m.provider, m.stats);
                Ok(())
            }),
            method::PLAN_WRITE => respond(frame, |m: PlanWrite| {
                self.plan_write(m.pages, m.replication)
            }),
            method::LIST_PROVIDERS => respond(frame, |_: ()| Ok(self.provider_ids())),
            other => error_frame(other, BlobError::Internal("unknown manager method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(strategy: Strategy) -> ProviderManagerService {
        let m = ProviderManagerService::new(strategy, 42, ServiceCosts::zero());
        for i in 0..4 {
            m.register(ProviderId(i), 1 << 30);
        }
        m
    }

    #[test]
    fn plan_issues_unique_write_ids() {
        let m = mgr(Strategy::RoundRobin);
        let a = m.plan_write(2, 1).unwrap();
        let b = m.plan_write(2, 1).unwrap();
        assert_ne!(a.write, b.write);
        assert_eq!(a.targets.len(), 2);
        assert_eq!(a.targets[0].len(), 1);
    }

    #[test]
    fn round_robin_spreads_pages() {
        let m = mgr(Strategy::RoundRobin);
        let plan = m.plan_write(8, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    /// A heartbeat reporting `bytes` of heap-resident load.
    fn heap_load(pages: u64, bytes: u64) -> ProviderStats {
        ProviderStats {
            pages,
            bytes,
            heap_bytes: bytes,
            mapped_bytes: 0,
            dead_bytes: 0,
        }
    }

    #[test]
    fn least_loaded_prefers_free_capacity() {
        let m = mgr(Strategy::LeastLoaded);
        m.set_page_size_hint(1024);
        // Provider 0 reports heavy usage.
        m.heartbeat(ProviderId(0), heap_load(1000, 1 << 29));
        let plan = m.plan_write(6, 1).unwrap();
        assert!(
            plan.targets.iter().all(|t| t[0] != ProviderId(0)),
            "loaded provider must be avoided: {:?}",
            plan.targets
        );
    }

    #[test]
    fn heartbeat_reports_backend_reserved_bytes_not_logical() {
        // An append-only mmap log holds bytes for removed pages too; the
        // manager must budget against the log footprint, not the (lower)
        // logical stored bytes, or try_reserve oversubscribes the disk.
        let m = mgr(Strategy::LeastLoaded);
        m.heartbeat(
            ProviderId(0),
            ProviderStats {
                pages: 2,
                bytes: 8 << 10, // logical: two live 4 KiB pages
                heap_bytes: 0,
                mapped_bytes: 1 << 29, // the log retains much more
                dead_bytes: 0,
            },
        );
        let p = m.projection(ProviderId(0)).unwrap();
        assert_eq!(p.reported, 1 << 29, "reported = backend-resident bytes");
        m.set_page_size_hint(1024);
        let plan = m.plan_write(6, 1).unwrap();
        assert!(
            plan.targets.iter().all(|t| t[0] != ProviderId(0)),
            "log-heavy provider must be avoided: {:?}",
            plan.targets
        );
    }

    #[test]
    fn in_flight_assignments_count_as_load() {
        let m = mgr(Strategy::LeastLoaded);
        m.set_page_size_hint(1 << 20);
        // Without heartbeats, repeated plans must still spread across
        // providers because in-flight bytes pile up.
        let plan = m.plan_write(8, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn power_of_two_balances_under_pressure() {
        let m = mgr(Strategy::PowerOfTwo);
        m.set_page_size_hint(1 << 20);
        let plan = m.plan_write(64, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        // Two-choice sampling against the in-flight projection keeps the
        // spread tight (least-loaded would be exactly 16 each).
        assert!(
            counts.iter().all(|&c| (8..=24).contains(&c)),
            "roughly balanced: {counts:?}"
        );
    }

    #[test]
    fn power_of_two_respects_projected_capacity() {
        let m = ProviderManagerService::new(Strategy::PowerOfTwo, 7, ServiceCosts::zero());
        m.set_page_size_hint(1024);
        // Room for exactly 4 + 2 pages in total.
        m.register(ProviderId(0), 4 * 1024);
        m.register(ProviderId(1), 2 * 1024);
        let plan = m.plan_write(6, 1).unwrap();
        assert_eq!(plan.targets.len(), 6);
        for id in [0u32, 1] {
            let p = m.projection(ProviderId(id)).unwrap();
            assert!(
                p.in_flight <= p.capacity,
                "provider {id} oversubscribed: {p:?}"
            );
        }
        // The 7th page cannot fit anywhere.
        assert!(m.plan_write(1, 1).is_err());
        // A heartbeat clearing the projection frees the capacity again.
        m.heartbeat(ProviderId(0), ProviderStats::default());
        assert!(m.plan_write(1, 1).is_ok());
    }

    #[test]
    fn failed_plan_releases_its_reservations() {
        let m = ProviderManagerService::new(Strategy::PowerOfTwo, 5, ServiceCosts::zero());
        m.set_page_size_hint(1024);
        m.register(ProviderId(0), 4 * 1024);
        // 6 pages cannot fit; the pages reserved before the failure must
        // be released, not linger as phantom load until a heartbeat.
        assert!(m.plan_write(6, 1).is_err());
        assert_eq!(m.projection(ProviderId(0)).unwrap().in_flight, 0);
        // The capacity really is still available to a plan that fits.
        assert!(m.plan_write(4, 1).is_ok());
    }

    #[test]
    fn replication_targets_are_distinct() {
        for strategy in [Strategy::LeastLoaded, Strategy::PowerOfTwo] {
            let m = mgr(strategy);
            let plan = m.plan_write(5, 3).unwrap();
            for t in &plan.targets {
                assert_eq!(t.len(), 3);
                let mut u = t.clone();
                u.sort();
                u.dedup();
                assert_eq!(u.len(), 3, "replicas must be distinct: {t:?}");
            }
        }
    }

    #[test]
    fn replication_clamped_and_dead_skipped() {
        let m = mgr(Strategy::LeastLoaded);
        m.mark_dead(ProviderId(2));
        m.mark_dead(ProviderId(3));
        let plan = m.plan_write(2, 4).unwrap();
        for t in &plan.targets {
            assert_eq!(t.len(), 2, "clamped to alive providers");
            assert!(!t.contains(&ProviderId(2)));
            assert!(!t.contains(&ProviderId(3)));
        }
        // Heartbeat revives.
        m.heartbeat(ProviderId(2), ProviderStats::default());
        let plan = m.plan_write(1, 3).unwrap();
        assert_eq!(plan.targets[0].len(), 3);
    }

    #[test]
    fn no_providers_is_an_error() {
        let m = ProviderManagerService::new(Strategy::LeastLoaded, 1, ServiceCosts::zero());
        assert!(m.plan_write(1, 1).is_err());
    }

    #[test]
    fn random_strategy_is_seeded_and_covers() {
        let m = mgr(Strategy::Random);
        let plan = m.plan_write(64, 1).unwrap();
        let mut counts = [0u32; 4];
        for t in &plan.targets {
            counts[t[0].0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 4), "roughly uniform: {counts:?}");
    }

    #[test]
    fn register_is_idempotent_and_updates_capacity() {
        let m = mgr(Strategy::LeastLoaded);
        m.register(ProviderId(0), 42);
        assert_eq!(m.provider_count(), 4, "re-register must not duplicate");
        let p = m.projection(ProviderId(0)).unwrap();
        assert_eq!(p.capacity, 42, "re-register must adopt the new capacity");
        assert!(p.alive);
        // Re-register revives a dead provider in place.
        m.mark_dead(ProviderId(0));
        assert!(!m.projection(ProviderId(0)).unwrap().alive);
        m.register(ProviderId(0), 43);
        let p = m.projection(ProviderId(0)).unwrap();
        assert!(p.alive && p.capacity == 43);
    }

    #[test]
    fn plan_write_is_lock_free_and_heartbeat_wait_free() {
        // Meter readings are flag sensitive: hold the shared side of the
        // cross-test ablation lock so no concurrent test flips the
        // serialized-control-plane toggle mid-assertion.
        let _shared = blobseer_util::testsync::ablation_shared();
        let m = mgr(Strategy::PowerOfTwo);
        let snap = lockmeter::thread_snapshot();
        m.plan_write(8, 2).unwrap();
        m.heartbeat(ProviderId(1), ProviderStats::default());
        m.mark_dead(ProviderId(2));
        m.register(ProviderId(1), 1 << 30); // known id: in-place revive
        let d = snap.since();
        assert_eq!(d.total_exclusive(), 0, "hot path must acquire no lock");
        assert_eq!(d.shared, 0);
    }

    #[test]
    fn serialized_ablation_charges_the_meter() {
        let m = mgr(Strategy::PowerOfTwo);
        // The RAII guard holds the exclusive ablation lock and restores
        // the toggle on drop (even if an assertion panics).
        let _ablation = lockmeter::serialized_ablation(true);
        let snap = lockmeter::thread_snapshot();
        m.plan_write(2, 1).unwrap();
        assert_eq!(snap.since().serializing, 1);
    }

    #[test]
    fn concurrent_planning_and_membership_changes() {
        use std::sync::Arc as StdArc;
        let m = StdArc::new(ProviderManagerService::new(
            Strategy::PowerOfTwo,
            3,
            ServiceCosts::zero(),
        ));
        for i in 0..8 {
            m.register(ProviderId(i), u64::MAX / 2);
        }
        let planners: Vec<_> = (0..4)
            .map(|_| {
                let m = StdArc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let plan = m.plan_write(4, 2).unwrap();
                        for t in &plan.targets {
                            assert_eq!(t.len(), 2);
                            assert_ne!(t[0], t[1]);
                        }
                    }
                })
            })
            .collect();
        let churner = {
            let m = StdArc::clone(&m);
            std::thread::spawn(move || {
                for round in 0..50u32 {
                    m.register(ProviderId(100 + (round % 4)), 1 << 30);
                    m.heartbeat(ProviderId(round % 8), ProviderStats::default());
                    m.mark_dead(ProviderId(100 + (round % 4)));
                }
            })
        };
        for p in planners {
            p.join().unwrap();
        }
        churner.join().unwrap();
        assert_eq!(m.provider_count(), 12);
    }
}
