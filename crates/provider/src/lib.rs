//! # blobseer-provider
//!
//! The data-plane services of the system (paper §III.A):
//!
//! * [`data`] — the **data provider**: immutable page storage (a
//!   concurrent serving index over a [`backend`]) with accounting and
//!   capacity enforcement;
//! * [`backend`] — the **storage backends** behind the provider:
//!   in-memory buffers ([`MemoryBackend`]) or a persistent append-only
//!   mapped page log ([`MmapBackend`]) that re-serves acknowledged
//!   pages after a restart;
//! * [`manager`] — the **provider manager**: provider registration,
//!   heartbeats, and load-balanced page placement (round-robin /
//!   least-loaded / random strategies), plus write-id issuance.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod data;
pub mod manager;

pub use backend::{
    BackendKind, CompactOutcome, CompactReport, LogOptions, MemoryBackend, MmapBackend,
    PreparedCompaction, ResidentBytes, StorageBackend,
};
pub use data::DataProviderService;
pub use manager::{ProviderManagerService, Strategy};
