//! # blobseer-provider
//!
//! The data-plane services of the system (paper §III.A):
//!
//! * [`data`] — the **data provider**: RAM-based immutable page storage
//!   with memory accounting and capacity enforcement;
//! * [`manager`] — the **provider manager**: provider registration,
//!   heartbeats, and load-balanced page placement (round-robin /
//!   least-loaded / random strategies), plus write-id issuance.

#![warn(missing_docs)]

pub mod data;
pub mod manager;

pub use data::DataProviderService;
pub use manager::{ProviderManagerService, Strategy};
