//! Storage backends for the data provider: where page bytes actually
//! live.
//!
//! The paper's providers "physically store in their local memory the
//! pages created by the WRITE operations" — PR 1–3 reproduced exactly
//! that ([`MemoryBackend`]): pages evaporate with the process. This
//! module adds the persistent variant the paper's storage nodes imply
//! at survey scale ([`MmapBackend`]): every acknowledged page is
//! appended to a per-provider **page log** (a self-indexing sequence of
//! `header + payload` records) and then *served as a refcounted slice
//! of a read-only memory mapping of that log* — zero heap copies on the
//! read path, and a provider restarted on the same directory replays
//! the log to re-serve everything it ever acknowledged.
//!
//! Copy discipline: a backend never meters a payload copy. [`MemoryBackend`]
//! stores the very buffer the RPC layer lent out; [`MmapBackend`] writes
//! the payload to the log with positioned I/O (kernel-side, exactly like
//! a socket write — not a memcpy the meter tracks) and serves the mapped
//! bytes by refcount. The one sanctioned write-path copy remains the
//! client's `copy_from_slice` of the caller's buffer.
//!
//! Capacity discipline: a backend enforces its own notion of fullness —
//! heap bytes for [`MemoryBackend`], log bytes (record headers included,
//! removes **not** reclaimed: the log is append-only) for
//! [`MmapBackend`] — and reports the split through
//! [`StorageBackend::resident`], which the provider surfaces as
//! `ProviderStats::{heap_bytes, mapped_bytes}` so the manager's
//! capacity reservations stay truthful for both.
//!
//! Crash-model caveat: records are written header-first with positioned
//! writes; the record check word folds in a **payload digest**, so a
//! torn record (valid header, partial payload) fails validation at
//! replay instead of serving corrupt bytes, and a *failed* write either
//! unreserves its range (when it is still the tail) or leaves a
//! **tombstone** replay steps over, so records acknowledged after an
//! I/O failure stay recoverable. What remains unprotected: concurrent
//! appenders reserve disjoint ranges, so a *process* crash between two
//! in-flight appends can leave a hole that truncates recovery to the
//! records before it — the in-process restart model used by the test
//! suite (kill the node, reopen the directory) never tears a record. A
//! production log would add a group-commit barrier here.

use blobseer_proto::tree::PageKey;
use blobseer_proto::{BlobError, BlobId, WriteId};
use blobseer_util::PageBuf;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which storage backend a data provider runs on (selectable per
/// deployment, like the transport).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Pages live in process memory (the paper's RAM providers); a
    /// restart loses everything.
    #[default]
    Memory,
    /// Pages live in an append-only mapped page log on disk; served as
    /// slices of the mapping, re-served after a restart on the same
    /// directory.
    Mmap,
}

/// A backend's resident backing bytes, split by where they live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidentBytes {
    /// Heap-allocation footprint (freed by removes).
    pub heap: u64,
    /// Mapped page-log footprint, record headers included (append-only:
    /// never shrinks while the provider lives).
    pub mapped: u64,
}

/// Where a data provider's page bytes live. The provider keeps the
/// serving index (`PageKey → PageBuf`) and logical-byte accounting; the
/// backend owns persistence, capacity enforcement, and the
/// backing-byte split.
pub trait StorageBackend: Send + Sync {
    /// Which kind this backend is.
    fn kind(&self) -> BackendKind;

    /// Ingest one page: persist it if the backend is persistent and
    /// return the buffer the provider should *serve* (for
    /// [`MmapBackend`]: a slice of the log mapping). `replaced` is the
    /// byte length of an index entry this put *probably* replaces
    /// (idempotent client re-put) — a credit applied to the capacity
    /// check only; the footprint itself is charged in full, and the
    /// caller reports the bytes an index replacement actually freed via
    /// [`StorageBackend::on_remove`], so racing puts of one key cannot
    /// drift the accounting. Fails — persisting nothing — when the
    /// backend is full.
    fn ingest(
        &self,
        key: &PageKey,
        data: &PageBuf,
        replaced: Option<u64>,
    ) -> Result<PageBuf, BlobError>;

    /// Account the removal of a stored entry of `len` bytes (heap
    /// backends free; the append-only log only forgets the index entry).
    fn on_remove(&self, len: u64);

    /// Current backing-byte footprint, split heap vs mapped.
    fn resident(&self) -> ResidentBytes;

    /// Replay persisted pages in acknowledgement order (startup
    /// recovery). Volatile backends recover nothing.
    fn recover(&self) -> Result<Vec<(PageKey, PageBuf)>, BlobError> {
        Ok(Vec::new())
    }

    /// Force persisted bytes to stable storage (no-op for volatile
    /// backends).
    fn sync(&self) -> Result<(), BlobError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Memory backend
// ---------------------------------------------------------------------------

/// The PR 1 regime: pages are heap buffers shared by refcount; the
/// backend only enforces the provider's RAM capacity.
pub struct MemoryBackend {
    capacity: u64,
    heap: AtomicU64,
}

impl MemoryBackend {
    /// Backend with `capacity` bytes of RAM.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            heap: AtomicU64::new(0),
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn ingest(
        &self,
        _key: &PageKey,
        data: &PageBuf,
        replaced: Option<u64>,
    ) -> Result<PageBuf, BlobError> {
        let len = data.len() as u64;
        let credit = replaced.unwrap_or(0);
        // Charge the full length; `replaced` is a credit for the
        // *capacity check only* (an idempotent re-put — client retry
        // after a lost ack — must not fail on a full-but-consistent
        // provider). The bytes an insert actually frees are returned via
        // `on_remove` once the index replacement happens, so the heap
        // counter is exactly the sum of indexed + in-flight entries and
        // can never drift, even when two puts of one key race the probe.
        self.heap
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                let projected = cur + len;
                (projected.saturating_sub(credit) <= self.capacity).then_some(projected)
            })
            .map_err(|_| BlobError::Internal("provider out of memory"))?;
        Ok(data.clone())
    }

    fn on_remove(&self, len: u64) {
        let _ = self
            .heap
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(len))
            });
    }

    fn resident(&self) -> ResidentBytes {
        ResidentBytes {
            heap: self.heap.load(Ordering::Relaxed),
            mapped: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Mmap backend
// ---------------------------------------------------------------------------

/// Bytes of one log-record header: six little-endian `u64`s —
/// `magic, blob, write, index, len, check`.
const REC_HEADER: u64 = 48;

/// Record magic ("BSPGLOG1").
const LOG_MAGIC: u64 = 0x4253_5047_4c4f_4731;

/// The log file's name inside the provider directory.
const LOG_FILE: &str = "pages.log";

/// One parsed log record.
enum LogRecord {
    /// A valid page record: key + payload-range end.
    Page(PageKey, u64),
    /// A tombstone (failed write's reserved range): skip to its end.
    Skip(u64),
}

/// Magic of a tombstone record: a reserved range whose write failed
/// while later appenders had already reserved beyond it. Replay skips
/// it instead of stopping, so the records acknowledged *after* the
/// failure stay recoverable.
const LOG_TOMBSTONE: u64 = 0x4253_5047_4445_4144; // "BSPGDEAD"

/// Fast 64-bit digest of the payload bytes (8-byte chunks + tail),
/// folded into the record check word so a torn record — valid header,
/// partial payload — fails validation at replay instead of serving
/// corrupt bytes.
fn payload_digest(data: &[u8]) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        acc = (acc ^ w)
            .rotate_left(23)
            .wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    for &b in chunks.remainder() {
        acc = (acc ^ b as u64)
            .rotate_left(9)
            .wrapping_mul(0x100_0000_01b3);
    }
    acc
}

fn check_word(magic: u64, blob: u64, write: u64, index: u64, len: u64, digest: u64) -> u64 {
    let mut s = magic
        ^ blob.rotate_left(17)
        ^ write.rotate_left(34)
        ^ index.rotate_left(51)
        ^ len
        ^ digest.rotate_left(7);
    blobseer_util::rng::splitmix64(&mut s)
}

fn encode_header(magic: u64, blob: u64, write: u64, index: u64, len: u64, digest: u64) -> [u8; 48] {
    let mut header = [0u8; REC_HEADER as usize];
    for (i, word) in [
        magic,
        blob,
        write,
        index,
        len,
        check_word(magic, blob, write, index, len, digest),
    ]
    .into_iter()
    .enumerate()
    {
        header[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
    }
    header
}

#[cfg(unix)]
fn write_at(file: &File, buf: &[u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, off)
}

#[cfg(not(unix))]
fn write_at(file: &File, buf: &[u8], off: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(off))?;
    f.write_all(buf)
}

/// The persistent backend: an append-only page log, memory-mapped
/// read-only once at open (full capacity, sparse), with pages served as
/// [`PageBuf`] slices of the mapping.
///
/// * **Append** reserves a record range with a CAS on the tail offset
///   (concurrent appenders never interleave bytes), then writes
///   `header + payload` with positioned I/O — no lock on the hot path,
///   no user-space copy.
/// * **Serve** is `map.slice(payload_range)`: a refcount bump on the
///   one mapping, zero copies (unix; other platforms degrade to serving
///   the ingested heap buffer — the log still persists).
/// * **Recover** replays the log from offset 0, validating each record
///   (magic + bounds + check word folding in the payload digest),
///   skipping tombstones, and stopping at the first invalid record;
///   replayed pages are again served from the mapping.
pub struct MmapBackend {
    file: File,
    /// The whole-capacity read-only mapping the served slices borrow.
    map: PageBuf,
    capacity: u64,
    /// Committed log tail: every byte below it is a complete record.
    offset: AtomicU64,
    dir: PathBuf,
}

impl MmapBackend {
    /// Open (or create) the page log under `dir` with room for
    /// `capacity` log bytes, record headers included. The file is
    /// extended sparsely to `capacity` up front so the mapping is
    /// created exactly once; a log that already holds records keeps
    /// them — call [`StorageBackend::recover`] to replay.
    pub fn open(dir: &Path, capacity: u64) -> Result<Self, BlobError> {
        std::fs::create_dir_all(dir).map_err(|_| BlobError::Internal("create provider dir"))?;
        let path = dir.join(LOG_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|_| BlobError::Internal("open provider page log"))?;
        let existing = file
            .metadata()
            .map_err(|_| BlobError::Internal("stat provider page log"))?
            .len();
        let map_len = capacity.max(existing);
        if map_len > existing || existing == 0 {
            file.set_len(map_len)
                .map_err(|_| BlobError::Internal("extend provider page log"))?;
        }
        let map =
            PageBuf::map_file(&file).map_err(|_| BlobError::Internal("map provider page log"))?;
        Ok(Self {
            file,
            map,
            capacity: map_len,
            offset: AtomicU64::new(0),
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this backend persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed log bytes (record headers included).
    pub fn log_bytes(&self) -> u64 {
        self.offset.load(Ordering::Relaxed)
    }

    /// The log mapping itself (white-box: tests assert served pages
    /// share this allocation).
    pub fn mapping(&self) -> &PageBuf {
        &self.map
    }

    fn read_u64(&self, off: u64) -> u64 {
        let s = &self.map.as_slice()[off as usize..off as usize + 8];
        u64::from_le_bytes(s.try_into().expect("8 bytes"))
    }

    /// Parse the record at `off`. `Page` carries the key and the
    /// payload-range end; `Skip` is a tombstone (a reserved range whose
    /// write failed) replay steps over; `None` ends replay — the header
    /// is invalid, out of bounds, or its payload digest does not match
    /// (a torn record is never served).
    fn parse_record(&self, off: u64, limit: u64) -> Option<LogRecord> {
        if off + REC_HEADER > limit {
            return None;
        }
        let magic = self.read_u64(off);
        if magic != LOG_MAGIC && magic != LOG_TOMBSTONE {
            return None;
        }
        let blob = self.read_u64(off + 8);
        let write = self.read_u64(off + 16);
        let index = self.read_u64(off + 24);
        let len = self.read_u64(off + 32);
        let check = self.read_u64(off + 40);
        let end = (off + REC_HEADER).checked_add(len)?;
        if end > limit {
            return None;
        }
        if magic == LOG_TOMBSTONE {
            // Tombstone check covers the header only — its payload range
            // is whatever the failed write left behind.
            return (check == check_word(magic, blob, write, index, len, 0))
                .then_some(LogRecord::Skip(end));
        }
        let digest =
            payload_digest(&self.map.as_slice()[(off + REC_HEADER) as usize..end as usize]);
        if check != check_word(magic, blob, write, index, len, digest) {
            return None;
        }
        let key = PageKey {
            blob: BlobId(blob),
            write: WriteId(write),
            index,
        };
        Some(LogRecord::Page(key, end))
    }
}

impl StorageBackend for MmapBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mmap
    }

    fn ingest(
        &self,
        key: &PageKey,
        data: &PageBuf,
        _replaced: Option<u64>,
    ) -> Result<PageBuf, BlobError> {
        let len = data.len() as u64;
        let rec = REC_HEADER + len;
        // Reserve a disjoint record range; the log is append-only, so a
        // re-put appends a fresh record (the old one is leaked until the
        // log is compacted — `replaced` earns no credit here).
        let start = self
            .offset
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur + rec <= self.capacity).then_some(cur + rec)
            })
            .map_err(|_| BlobError::Internal("provider page log full"))?;

        let header = encode_header(
            LOG_MAGIC,
            key.blob.0,
            key.write.0,
            key.index,
            len,
            payload_digest(data.as_slice()),
        );
        // Positioned kernel writes, not metered memcpys — the payload
        // goes file-ward the same way gather-write sends it socket-ward.
        let written = write_at(&self.file, &header, start)
            .and_then(|()| write_at(&self.file, data.as_slice(), start + REC_HEADER));
        if written.is_err() {
            // The range was reserved but never became a valid record. If
            // we are still the log tail, unreserve it; otherwise later
            // appenders own bytes beyond us, so leave a tombstone replay
            // can step over — a hole here would truncate recovery of
            // every record acknowledged after this failure.
            let rolled_back = self
                .offset
                .compare_exchange(start + rec, start, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok();
            if !rolled_back {
                let tomb = encode_header(LOG_TOMBSTONE, 0, 0, 0, len, 0);
                // Best effort: if even this write fails the medium is
                // gone and replay will stop here.
                let _ = write_at(&self.file, &tomb, start);
            }
            return Err(BlobError::Internal("provider page log write failed"));
        }

        // Serve the mapped bytes (unix: the MAP_SHARED mapping sees the
        // write through the unified page cache). Elsewhere the mapping
        // is a snapshot, so serve the ingested heap buffer instead.
        #[cfg(unix)]
        {
            let s = (start + REC_HEADER) as usize;
            Ok(self.map.slice(s..s + data.len()))
        }
        #[cfg(not(unix))]
        {
            Ok(data.clone())
        }
    }

    fn on_remove(&self, _len: u64) {
        // Append-only: removal drops the index entry upstream; the log
        // retains the record until compaction (future work).
    }

    fn resident(&self) -> ResidentBytes {
        ResidentBytes {
            heap: 0,
            mapped: self.log_bytes(),
        }
    }

    fn recover(&self) -> Result<Vec<(PageKey, PageBuf)>, BlobError> {
        let limit = self.map.len() as u64;
        let mut out = Vec::new();
        let mut off = 0u64;
        while let Some(rec) = self.parse_record(off, limit) {
            off = match rec {
                LogRecord::Page(key, end) => {
                    let payload = (off + REC_HEADER) as usize..end as usize;
                    out.push((key, self.map.slice(payload)));
                    end
                }
                LogRecord::Skip(end) => end,
            };
        }
        // Everything beyond the last valid record is unacknowledged
        // space; appends resume over it.
        self.offset.store(off, Ordering::Relaxed);
        Ok(out)
    }

    fn sync(&self) -> Result<(), BlobError> {
        self.file
            .sync_data()
            .map_err(|_| BlobError::Internal("provider page log sync failed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_util::copymeter;

    fn key(w: u64, i: u64) -> PageKey {
        PageKey {
            blob: BlobId(1),
            write: WriteId(w),
            index: i,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("blobseer-backend-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_backend_enforces_capacity_with_replacement_credit() {
        let b = MemoryBackend::new(8192);
        let page = PageBuf::from_vec(vec![7u8; 4096]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        b.ingest(&key(1, 1), &page, None).unwrap();
        assert!(b.ingest(&key(1, 2), &page, None).is_err(), "full");
        // Idempotent re-put: the replaced length is a check-time credit;
        // the caller reports the actually freed entry via on_remove
        // (here: the index replacement frees the old 4096).
        b.ingest(&key(1, 0), &page, Some(4096)).unwrap();
        b.on_remove(4096);
        assert_eq!(
            b.resident(),
            ResidentBytes {
                heap: 8192,
                mapped: 0
            }
        );
        b.on_remove(4096);
        assert_eq!(b.resident().heap, 4096);
    }

    #[test]
    fn memory_backend_accounting_cannot_drift_under_racing_re_puts() {
        // Model two clients re-putting the same key concurrently: both
        // probe before either inserts, so both ingest with no credit;
        // the index replacement then frees exactly one old entry. The
        // heap counter must land on the truth (one live entry), not
        // accumulate a phantom.
        let b = MemoryBackend::new(1 << 20);
        let page = PageBuf::from_vec(vec![7u8; 4096]);
        b.ingest(&key(1, 0), &page, None).unwrap(); // first put, inserts fresh
        b.ingest(&key(1, 0), &page, None).unwrap(); // racer probed None too
        b.on_remove(4096); // second insert replaced the first entry
        assert_eq!(b.resident().heap, 4096, "exactly one live entry");
        b.on_remove(4096); // eventual remove of the key
        assert_eq!(b.resident().heap, 0, "no phantom bytes remain");
    }

    #[test]
    fn mmap_backend_appends_serves_mapped_and_recovers() {
        let dir = temp_dir("roundtrip");
        let b = MmapBackend::open(&dir, 1 << 20).unwrap();
        let p0: PageBuf = PageBuf::from_vec((0..4096u32).map(|i| (i % 251) as u8).collect());
        let p1: PageBuf = PageBuf::from_vec(vec![9u8; 4096]);

        let before = copymeter::thread_snapshot();
        let s0 = b.ingest(&key(1, 0), &p0, None).unwrap();
        let s1 = b.ingest(&key(1, 1), &p1, None).unwrap();
        assert_eq!(
            before.bytes_since(),
            0,
            "appending to and serving from the log must meter zero copies"
        );
        assert_eq!(s0, p0);
        assert_eq!(s1, p1);
        #[cfg(unix)]
        {
            assert!(s0.is_mapped() && s1.is_mapped());
            assert!(s0.same_allocation(b.mapping()));
        }
        assert_eq!(b.resident().mapped, 2 * (REC_HEADER + 4096));
        assert_eq!(b.resident().heap, 0);

        // A fresh backend on the same directory replays both records.
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 20).unwrap();
        let before = copymeter::thread_snapshot();
        let recovered = b2.recover().unwrap();
        assert_eq!(before.bytes_since(), 0, "recovery lends from the mapping");
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].0, key(1, 0));
        assert_eq!(recovered[0].1, p0);
        assert_eq!(recovered[1].0, key(1, 1));
        assert_eq!(recovered[1].1, p1);
        assert!(recovered.iter().all(|(_, p)| p.is_mapped()));
        // Appends resume after the replayed tail.
        assert_eq!(b2.log_bytes(), 2 * (REC_HEADER + 4096));
        b2.ingest(&key(2, 0), &p0, None).unwrap();
        assert_eq!(b2.log_bytes(), 3 * (REC_HEADER + 4096));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_tombstones_and_keeps_later_records() {
        // A failed write that could not be rolled back (later appenders
        // already reserved beyond it) leaves a tombstone; replay must
        // step over it and keep serving the records after it.
        let dir = temp_dir("tombstone");
        let pa = PageBuf::from_vec(vec![1u8; 512]);
        let pc = PageBuf::from_vec(vec![3u8; 512]);
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &pa, None).unwrap();
            // Handcraft the aftermath of a failed concurrent append: a
            // tombstone over a 512-byte reserved range, then a valid
            // record appended beyond it.
            let tomb_at = b.log_bytes();
            let tomb = encode_header(LOG_TOMBSTONE, 0, 0, 0, 512, 0);
            write_at(&b.file, &tomb, tomb_at).unwrap();
            let c_at = tomb_at + REC_HEADER + 512;
            let ch = encode_header(LOG_MAGIC, 1, 2, 7, 512, payload_digest(pc.as_slice()));
            write_at(&b.file, &ch, c_at).unwrap();
            write_at(&b.file, pc.as_slice(), c_at + REC_HEADER).unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 2, "tombstone skipped, both pages kept");
        assert_eq!(recovered[0].0, key(1, 0));
        assert_eq!(recovered[0].1, pa);
        assert_eq!(recovered[1].0, key(2, 7));
        assert_eq!(recovered[1].1, pc);
        // Appends resume after the last valid record, not at the hole.
        assert_eq!(b.log_bytes(), 3 * (REC_HEADER + 512));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rejects_torn_payload() {
        // A record whose header is intact but whose payload bytes were
        // torn (crash between the two positioned writes) must fail the
        // digest and never be served.
        let dir = temp_dir("torn");
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &PageBuf::from_vec(vec![1u8; 512]), None)
                .unwrap();
            b.ingest(&key(1, 1), &PageBuf::from_vec(vec![2u8; 512]), None)
                .unwrap();
            // Tear one payload byte of the second record.
            let second_payload = REC_HEADER + 512 + REC_HEADER;
            write_at(&b.file, &[0xEE], second_payload + 100).unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 1, "torn record rejected by digest");
        assert_eq!(recovered[0].0, key(1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_tail_write_is_rolled_back() {
        // White-box: a reservation that is still the tail is unreserved
        // on failure (simulated by calling the rollback CAS directly is
        // not possible; instead verify the reservation math by filling
        // the log and observing no phantom growth on failure).
        let dir = temp_dir("rollback");
        let b = MmapBackend::open(&dir, REC_HEADER + 512).unwrap();
        let page = PageBuf::from_vec(vec![1u8; 512]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        let tail = b.log_bytes();
        // Log full: the reservation itself fails, offset untouched.
        assert!(b.ingest(&key(1, 1), &page, None).is_err());
        assert_eq!(b.log_bytes(), tail, "failed reservation reserves nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_backend_recovery_stops_at_corruption() {
        let dir = temp_dir("corrupt");
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let page = PageBuf::from_vec(vec![5u8; 512]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        b.ingest(&key(1, 1), &page, None).unwrap();
        // Flip a byte in the second record's header check word.
        let second = REC_HEADER + 512 + 40;
        write_at(&b.file, &[0xFF], second).unwrap();
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b2.recover().unwrap();
        assert_eq!(recovered.len(), 1, "replay stops at the corrupt record");
        assert_eq!(recovered[0].0, key(1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_backend_enforces_log_capacity() {
        let dir = temp_dir("capacity");
        let b = MmapBackend::open(&dir, 2 * (REC_HEADER + 1024)).unwrap();
        let page = PageBuf::from_vec(vec![1u8; 1024]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        b.ingest(&key(1, 1), &page, None).unwrap();
        let err = b.ingest(&key(1, 2), &page, None);
        assert!(err.is_err(), "log full");
        // Removes reclaim nothing: the log is append-only.
        b.on_remove(1024);
        assert!(b.ingest(&key(1, 3), &page, None).is_err());
        assert_eq!(b.resident().mapped, 2 * (REC_HEADER + 1024));
        b.sync().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let dir = temp_dir("empty");
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        assert!(b.recover().unwrap().is_empty());
        assert_eq!(b.log_bytes(), 0);
        assert_eq!(b.kind(), BackendKind::Mmap);
        assert_eq!(MemoryBackend::new(1).kind(), BackendKind::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
