//! Storage backends for the data provider: where page bytes actually
//! live.
//!
//! The paper's providers "physically store in their local memory the
//! pages created by the WRITE operations" — PR 1–3 reproduced exactly
//! that ([`MemoryBackend`]): pages evaporate with the process. This
//! module adds the persistent variant the paper's storage nodes imply
//! at survey scale ([`MmapBackend`]): every acknowledged page lives in
//! a per-provider **page log** (a self-indexing sequence of
//! `header + payload` records sealed by **commit markers**) and is
//! *served as a refcounted slice of a read-only memory mapping of that
//! log* — zero heap copies on the read path, and a provider restarted
//! on the same directory replays the log to re-serve everything it
//! ever acknowledged.
//!
//! # Log format (generation files)
//!
//! A provider directory holds exactly one live **generation** file,
//! `pages.g<N>.log` (plus, transiently, the debris of an interrupted
//! compaction — see below). A generation is a sequence of 48-byte
//! little-endian headers (`magic, a, b, c, len, check`), three kinds:
//!
//! * **Page record** (`magic` = `BSPGLOG2`): `a/b/c` are the page key
//!   (blob, write, index), `len` payload bytes follow the header, and
//!   `check` folds in a digest of those payload bytes so a torn record
//!   fails validation instead of serving corrupt bytes.
//! * **Tombstone** (`BSPGDEAD`): a reserved range whose write failed
//!   while later appenders had already reserved beyond it; replay steps
//!   over its `len` payload bytes.
//! * **Commit marker** (`BSPGCMT1`): `a` is a strictly-sequential
//!   marker number, `b` is the log offset the previous marker sealed
//!   up to, `len` is 0. A marker at offset `M` declares every record in
//!   `[b, M)` **committed**.
//!
//! # Crash model: record-then-commit
//!
//! An append is *record then commit*: the record bytes land first
//! (CAS-reserved disjoint ranges, positioned kernel writes — no lock,
//! no user-space copy), and the append is acknowledged only once a
//! commit marker covering it lands. Replay makes records visible
//! **only up to the last valid, in-sequence marker**: a torn record, a
//! torn marker, or a checksum-valid marker with the wrong sequence
//! number or coverage ends replay at the previous durable point, and
//! appends resume there — so a *process* crash between two in-flight
//! concurrent appends can tear at most the uncommitted tail, never a
//! page that was acknowledged. Commit is **group commit**: one leader
//! seals everything completed so far with a single marker (and, with
//! [`LogOptions::fsync_on_commit`], a single `fdatasync`) while
//! followers wait for coverage, so the marker cost amortizes across
//! concurrent appenders.
//!
//! # Space model: online compaction
//!
//! The log is append-only, so removed and superseded records
//! accumulate as **dead bytes** ([`StorageBackend::dead_bytes`]). When
//! they exceed the configured threshold
//! ([`LogOptions::compact_dead_ratio`] of the log, at least
//! [`LogOptions::compact_min_dead_bytes`]), the provider rewrites the
//! live records into a fresh generation file `pages.g<N+1>.log`
//! (written to a `.tmp` name, sealed with a marker, fsynced, then
//! atomically renamed), swaps the in-memory mapping, and unlinks the
//! old file. Readers are never invalidated: the old mapping is
//! immutable and refcounted, so every [`PageBuf`] served before the
//! swap keeps reading its bytes until it drops — generation swap, not
//! invalidation. A crash mid-compaction leaves either a `.tmp` (the
//! swap never happened: the old generation wins) or both `pages.g<N>`
//! and `pages.g<N+1>` (the rename happened: the newest complete
//! generation wins); [`MmapBackend::open`] scans the directory,
//! keeps the highest sealed generation, and removes the debris.
//!
//! Copy discipline: a backend never meters a payload copy.
//! [`MemoryBackend`] stores the very buffer the RPC layer lent out;
//! [`MmapBackend`] writes payloads (and compaction rewrites) with
//! positioned I/O — kernel-side, exactly like a socket write, not a
//! memcpy the meter tracks — and serves mapped bytes by refcount. The
//! one sanctioned write-path copy remains the client's
//! `copy_from_slice` of the caller's buffer.
//!
//! Capacity discipline: a backend enforces its own notion of fullness —
//! heap bytes for [`MemoryBackend`], generation-file bytes (headers and
//! markers included) for [`MmapBackend`] — and reports the split
//! through [`StorageBackend::resident`], which the provider surfaces
//! as `ProviderStats::{heap_bytes, mapped_bytes}`. During a compaction
//! window two generation files exist on disk, but `resident` always
//! reports exactly **one** generation (the serving one), so a page
//! being carried across never counts twice against the manager's
//! capacity reservations.

use blobseer_proto::tree::PageKey;
use blobseer_proto::{BlobError, BlobId, WriteId};
use blobseer_util::recordlog::{
    check_word, encode_header, payload_digest, write_at, COMMIT_MAGIC, REC_HEADER, TOMBSTONE_MAGIC,
};
use blobseer_util::PageBuf;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which storage backend a data provider runs on (selectable per
/// deployment, like the transport).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Pages live in process memory (the paper's RAM providers); a
    /// restart loses everything.
    #[default]
    Memory,
    /// Pages live in a crash-consistent mapped page log on disk; served
    /// as slices of the mapping, re-served after a restart on the same
    /// directory.
    Mmap,
}

/// A backend's resident backing bytes, split by where they live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidentBytes {
    /// Heap-allocation footprint (freed by removes).
    pub heap: u64,
    /// Mapped page-log footprint of the **serving generation** only,
    /// record headers and commit markers included. Grows append-only
    /// within a generation; shrinks when compaction swaps in a fresh
    /// one.
    pub mapped: u64,
}

/// Tuning knobs for the persistent page log (durability and space
/// reclamation). Carried by `DeploymentConfig` so a deployment selects
/// its durability regime the same way it selects transport and backend.
#[derive(Clone, Copy, Debug)]
pub struct LogOptions {
    /// `fdatasync` the log on every commit marker. Off (the default),
    /// an acknowledged append survives a process crash (the kernel
    /// holds the bytes); on, it also survives power loss — one sync per
    /// *group* commit, amortized across the batch.
    pub fsync_on_commit: bool,
    /// How long a group-commit leader waits for concurrent appends to
    /// join its batch before sealing the marker. Zero (the default)
    /// still batches naturally: every append that completes while a
    /// commit is in flight is sealed by the next marker.
    pub group_commit_window: Duration,
    /// Compact once dead bytes exceed this fraction of the log
    /// (`0.0 < r < 1.0`; `0` disables the automatic trigger —
    /// explicit compaction keeps working).
    pub compact_dead_ratio: f64,
    /// …and at least this many dead bytes (so tiny logs don't churn).
    pub compact_min_dead_bytes: u64,
}

impl Default for LogOptions {
    fn default() -> Self {
        Self {
            fsync_on_commit: false,
            group_commit_window: Duration::ZERO,
            compact_dead_ratio: 0.5,
            compact_min_dead_bytes: 64 * 1024,
        }
    }
}

/// What one compaction accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// The generation number compaction produced.
    pub generation: u64,
    /// Log bytes of the generation it replaced.
    pub old_log_bytes: u64,
    /// Log bytes of the fresh generation (live records + one marker).
    pub new_log_bytes: u64,
    /// Bytes the swap reclaimed (`old - new`).
    pub reclaimed_bytes: u64,
}

/// A successful compaction: the fresh serving buffers for every live
/// page (slices of the new generation's mapping) plus the report.
pub struct CompactOutcome {
    /// `key → fresh PageBuf` for every entry of the `current` index the
    /// caller passed to [`StorageBackend::compact_install`], in the
    /// same order; the caller re-points its serving index at these.
    pub entries: Vec<(PageKey, PageBuf)>,
    /// Space accounting of the swap.
    pub report: CompactReport,
}

/// The output of [`StorageBackend::compact_prepare`]: a fully written,
/// sealed, fsynced — but **not yet serving** — next generation, plus
/// the snapshot it was built from. Opaque: the only thing to do with
/// one is hand it to [`StorageBackend::compact_install`] (or drop it,
/// which abandons the file as `.tmp` debris the next open sweeps up).
pub struct PreparedCompaction {
    next: u64,
    file: File,
    tmp_path: PathBuf,
    final_path: PathBuf,
    map: PageBuf,
    /// End of the sealed snapshot (records + marker): the durable point
    /// if nothing moved during the window, and where catch-up appends.
    durable: u64,
    /// `key → (payload offset, len)` in the new file, snapshot order.
    ranges: Vec<(PageKey, usize, usize)>,
    /// The snapshot itself, kept alive so install can compare the
    /// caller's current buffers against it by slice identity.
    snapshot: Vec<(PageKey, PageBuf)>,
    /// Generation number the snapshot was taken against.
    old_number: u64,
}

/// Where a data provider's page bytes live. The provider keeps the
/// serving index (`PageKey → PageBuf`) and logical-byte accounting; the
/// backend owns persistence, capacity enforcement, and the
/// backing-byte split.
pub trait StorageBackend: Send + Sync {
    /// Which kind this backend is.
    fn kind(&self) -> BackendKind;

    /// Ingest one page: persist it if the backend is persistent and
    /// return the buffer the provider should *serve* (for
    /// [`MmapBackend`]: a slice of the log mapping). `replaced` is the
    /// byte length of an index entry this put *probably* replaces
    /// (idempotent client re-put) — a credit applied to the capacity
    /// check only; the footprint itself is charged in full, and the
    /// caller reports the bytes an index replacement actually freed via
    /// [`StorageBackend::on_remove`], so racing puts of one key cannot
    /// drift the accounting. Fails — persisting nothing — when the
    /// backend is full. A persistent backend returns only once the
    /// page is **committed** (covered by a commit marker), so
    /// "acknowledged" always means "recoverable".
    fn ingest(
        &self,
        key: &PageKey,
        data: &PageBuf,
        replaced: Option<u64>,
    ) -> Result<PageBuf, BlobError>;

    /// Account the removal of a stored entry of `len` bytes (heap
    /// backends free; the page log counts the record as dead bytes a
    /// future compaction reclaims).
    fn on_remove(&self, len: u64);

    /// Current backing-byte footprint, split heap vs mapped.
    fn resident(&self) -> ResidentBytes;

    /// Log bytes owed to removed or superseded records (what compaction
    /// would reclaim). Always 0 for backends that free eagerly.
    fn dead_bytes(&self) -> u64 {
        0
    }

    /// True when dead bytes crossed the configured compaction
    /// threshold and the caller should run
    /// [`StorageBackend::compact`].
    fn wants_compaction(&self) -> bool {
        false
    }

    /// Compaction phase 1 — the expensive part, safe to run with
    /// **concurrent mutations**: rewrite the `live` snapshot into a
    /// fresh not-yet-serving generation (write, seal, fsync), without
    /// touching the serving state. Returns `None` for backends with
    /// nothing to compact (the memory backend frees eagerly — the no-op
    /// path). Pages ingested, superseded, or removed while this runs
    /// are reconciled by [`StorageBackend::compact_install`].
    fn compact_prepare(
        &self,
        live: &[(PageKey, PageBuf)],
    ) -> Result<Option<PreparedCompaction>, BlobError> {
        let _ = live;
        Ok(None)
    }

    /// Compaction phase 2 — the swap, **mutually exclusive with
    /// `ingest`/`on_remove`** (the caller holds its maintenance gate):
    /// catch the prepared generation up with whatever moved since the
    /// snapshot (`current` is the caller's index as of now — entries
    /// that changed identity are appended under a second marker), make
    /// it the serving generation, and reclaim the old one. Concurrent
    /// *reads* stay fine — previously served buffers keep the old
    /// mapping alive by refcount.
    fn compact_install(
        &self,
        prepared: PreparedCompaction,
        current: &[(PageKey, PageBuf)],
    ) -> Result<Option<CompactOutcome>, BlobError> {
        let _ = (prepared, current);
        Ok(None)
    }

    /// One-shot compaction: [`StorageBackend::compact_prepare`] and
    /// [`StorageBackend::compact_install`] back to back, for callers
    /// that exclude mutations for the whole duration (tests, the
    /// salvage path on a full log).
    fn compact(&self, live: &[(PageKey, PageBuf)]) -> Result<Option<CompactOutcome>, BlobError> {
        match self.compact_prepare(live)? {
            None => Ok(None),
            Some(prepared) => self.compact_install(prepared, live),
        }
    }

    /// Replay persisted pages in acknowledgement order (startup
    /// recovery). Volatile backends recover nothing.
    fn recover(&self) -> Result<Vec<(PageKey, PageBuf)>, BlobError> {
        Ok(Vec::new())
    }

    /// Force persisted bytes to stable storage (no-op for volatile
    /// backends).
    fn sync(&self) -> Result<(), BlobError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Memory backend
// ---------------------------------------------------------------------------

/// The PR 1 regime: pages are heap buffers shared by refcount; the
/// backend only enforces the provider's RAM capacity.
pub struct MemoryBackend {
    capacity: u64,
    heap: AtomicU64,
}

impl MemoryBackend {
    /// Backend with `capacity` bytes of RAM.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            heap: AtomicU64::new(0),
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn ingest(
        &self,
        _key: &PageKey,
        data: &PageBuf,
        replaced: Option<u64>,
    ) -> Result<PageBuf, BlobError> {
        let len = data.len() as u64;
        let credit = replaced.unwrap_or(0);
        // Charge the full length; `replaced` is a credit for the
        // *capacity check only* (an idempotent re-put — client retry
        // after a lost ack — must not fail on a full-but-consistent
        // provider). The bytes an insert actually frees are returned via
        // `on_remove` once the index replacement happens, so the heap
        // counter is exactly the sum of indexed + in-flight entries and
        // can never drift, even when two puts of one key race the probe.
        self.heap
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                let projected = cur + len;
                (projected.saturating_sub(credit) <= self.capacity).then_some(projected)
            })
            .map_err(|_| BlobError::Internal("provider out of memory"))?;
        Ok(data.clone())
    }

    fn on_remove(&self, len: u64) {
        let _ = self
            .heap
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(len))
            });
    }

    fn resident(&self) -> ResidentBytes {
        ResidentBytes {
            heap: self.heap.load(Ordering::Relaxed),
            mapped: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Mmap backend: log format primitives
// ---------------------------------------------------------------------------
//
// The header/check/tombstone/commit-marker format lives in
// `blobseer_util::recordlog` since PR 7 — the control plane (metadata
// tree, version history) journals through the same engine. Only the
// page-record magic and the mmap-specific replay stay here.

/// Page-record magic ("BSPGLOG2" — the commit-marker format; v1 logs
/// without markers do not replay).
const LOG_MAGIC: u64 = 0x4253_5047_4c4f_4732;

/// One parsed log record.
enum LogRecord {
    /// A valid page record: key + payload-range end.
    Page(PageKey, u64),
    /// A tombstone (failed write's reserved range): skip to its end.
    Skip(u64),
    /// A commit marker: sequence number + the durable offset it claims
    /// the previous marker sealed up to.
    Commit { seq: u64, covered_from: u64 },
}

/// `pages.g<n>.log`.
fn gen_file_name(n: u64) -> String {
    format!("pages.g{n}.log")
}

/// Parse a generation number out of a `pages.g<n>.log` file name.
fn parse_gen_name(name: &str) -> Option<u64> {
    name.strip_prefix("pages.g")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------------
// Mmap backend: one generation
// ---------------------------------------------------------------------------

/// Commit bookkeeping of one generation, guarded by its mutex.
#[derive(Default)]
struct CommitState {
    /// Every byte below this offset is sealed by a marker (the marker
    /// bytes included). Replay never recovers past it.
    durable: u64,
    /// Contiguous completed-bytes frontier: every reserved range below
    /// it has finished its write (record, tombstone, or marker).
    frontier: u64,
    /// Completed ranges that landed out of order (`start → end`),
    /// merged into `frontier` as the gap before them closes.
    completed: BTreeMap<u64, u64>,
    /// Sequence number the next marker carries.
    next_seq: u64,
    /// A group-commit leader is in flight; followers wait for coverage.
    committing: bool,
    /// The medium failed in a way that could strand committed-but-
    /// unreplayable records; no further commit may succeed.
    poisoned: bool,
}

/// One mapped generation file of the page log.
struct Generation {
    number: u64,
    file: File,
    /// The whole-capacity read-only mapping served slices borrow,
    /// tagged with the generation number.
    map: PageBuf,
    capacity: u64,
    /// Reservation frontier: appends CAS disjoint ranges off it.
    tail: AtomicU64,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
    path: PathBuf,
}

impl Generation {
    /// Open (or create) generation `number` under `dir`, extend it
    /// sparsely to `capacity`, and map it exactly once. With
    /// `strict_dir_sync` (the fsync-on-commit regime) the directory
    /// entry of a freshly created log must itself reach stable storage
    /// before any commit is acknowledged — a power loss that drops the
    /// dirent drops every "durable" marker with it.
    fn open(
        dir: &Path,
        number: u64,
        capacity: u64,
        strict_dir_sync: bool,
    ) -> Result<Self, BlobError> {
        let path = dir.join(gen_file_name(number));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|_| BlobError::Internal("open provider page log"))?;
        let existing = file
            .metadata()
            .map_err(|_| BlobError::Internal("stat provider page log"))?
            .len();
        let map_len = capacity.max(existing);
        if map_len > existing || existing == 0 {
            file.set_len(map_len)
                .map_err(|_| BlobError::Internal("extend provider page log"))?;
        }
        let dir_synced = File::open(dir).and_then(|d| d.sync_all());
        if dir_synced.is_err() && strict_dir_sync {
            return Err(BlobError::Internal("sync provider dir"));
        }
        let map = PageBuf::map_file_tagged(&file, number)
            .map_err(|_| BlobError::Internal("map provider page log"))?;
        Ok(Self {
            number,
            file,
            map,
            capacity: map_len,
            tail: AtomicU64::new(0),
            commit: Mutex::new(CommitState::default()),
            commit_cv: Condvar::new(),
            path,
        })
    }

    fn read_u64(&self, off: u64) -> u64 {
        let s = &self.map.as_slice()[off as usize..off as usize + 8];
        // lint: allow(panic-on-serving-path) — the slice above is exactly 8 bytes
        u64::from_le_bytes(s.try_into().expect("8 bytes"))
    }

    /// Parse the record at `off`; `None` is an invalid record (torn,
    /// corrupt, out of bounds) — replay ends at the last durable point
    /// before it.
    fn parse_record(&self, off: u64, limit: u64) -> Option<LogRecord> {
        if off + REC_HEADER > limit {
            return None;
        }
        let magic = self.read_u64(off);
        if magic != LOG_MAGIC && magic != TOMBSTONE_MAGIC && magic != COMMIT_MAGIC {
            return None;
        }
        let a = self.read_u64(off + 8);
        let b = self.read_u64(off + 16);
        let c = self.read_u64(off + 24);
        let len = self.read_u64(off + 32);
        let check = self.read_u64(off + 40);
        let end = (off + REC_HEADER).checked_add(len)?;
        if end > limit {
            return None;
        }
        match magic {
            COMMIT_MAGIC => {
                // A marker carries no payload; its check covers the
                // header only.
                (len == 0 && check == check_word(magic, a, b, c, len, 0)).then_some(
                    LogRecord::Commit {
                        seq: a,
                        covered_from: b,
                    },
                )
            }
            TOMBSTONE_MAGIC => {
                // Tombstone check covers the header only — its payload
                // range is whatever the failed write left behind.
                (check == check_word(magic, a, b, c, len, 0)).then_some(LogRecord::Skip(end))
            }
            _ => {
                let digest =
                    payload_digest(&self.map.as_slice()[(off + REC_HEADER) as usize..end as usize]);
                if check != check_word(magic, a, b, c, len, digest) {
                    return None;
                }
                let key = PageKey {
                    blob: BlobId(a),
                    write: WriteId(b),
                    index: c,
                };
                Some(LogRecord::Page(key, end))
            }
        }
    }

    /// Record that the reserved range `[start, end)` finished its
    /// write, advancing the contiguous frontier when the gap before it
    /// closed, and wake anyone waiting on the frontier.
    fn complete(&self, start: u64, end: u64) {
        let mut st = self.commit.lock();
        if st.frontier == start {
            st.frontier = end;
            loop {
                let f = st.frontier;
                match st.completed.remove(&f) {
                    Some(e) => st.frontier = e,
                    None => break,
                }
            }
        } else {
            st.completed.insert(start, end);
        }
        self.commit_cv.notify_all();
    }

    /// Group commit: block until a marker covering `my_end` is durable.
    /// Exactly one leader at a time seals a marker; every append that
    /// completed before the seal rides the same marker (and the same
    /// optional fsync).
    fn commit_covering(&self, my_end: u64, opts: &LogOptions) -> Result<(), BlobError> {
        loop {
            {
                let mut st = self.commit.lock();
                loop {
                    if st.durable >= my_end {
                        return Ok(());
                    }
                    if st.poisoned {
                        return Err(BlobError::Internal("provider page log poisoned"));
                    }
                    if !st.committing {
                        st.committing = true;
                        break;
                    }
                    self.commit_cv.wait(&mut st);
                }
            }
            let sealed = self.commit_lead(opts);
            let mut st = self.commit.lock();
            st.committing = false;
            self.commit_cv.notify_all();
            match sealed {
                // The marker slot is reserved at the tail, after this
                // append's completed record, so one round always covers
                // it — the loop is belt and braces.
                Ok(()) if st.durable >= my_end => return Ok(()),
                Ok(()) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The leader's half of a group commit: optionally linger so
    /// concurrent appends join the batch, reserve the marker slot at
    /// the tail, wait for every record below it to finish writing,
    /// seal, and (optionally) fsync.
    fn commit_lead(&self, opts: &LogOptions) -> Result<(), BlobError> {
        if !opts.group_commit_window.is_zero() {
            std::thread::sleep(opts.group_commit_window);
        }
        let marker_at = self
            .tail
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur + REC_HEADER <= self.capacity).then_some(cur + REC_HEADER)
            })
            .map_err(|_| BlobError::Internal("provider page log full"))?;
        let (seq, covered_from) = {
            let mut st = self.commit.lock();
            while st.frontier < marker_at {
                if st.poisoned {
                    return Err(BlobError::Internal("provider page log poisoned"));
                }
                self.commit_cv.wait(&mut st);
            }
            // Re-check under the same lock: a failed append below the
            // marker slot poisons *before* completing its range, so a
            // frontier that already reached the slot can carry an
            // un-skippable hole — sealing a marker over it would
            // acknowledge records replay can never reach.
            if st.poisoned {
                return Err(BlobError::Internal("provider page log poisoned"));
            }
            debug_assert_eq!(st.frontier, marker_at, "marker slot is the frontier");
            (st.next_seq, st.durable)
        };
        let header = encode_header(COMMIT_MAGIC, seq, covered_from, 0, 0, 0);
        if write_at(&self.file, &header, marker_at).is_err() {
            // The marker slot would be an un-skippable hole: a later
            // marker could commit records replay can never reach. Brand
            // the slot a tombstone so replay steps over it; if even
            // that fails, poison the generation — nothing further gets
            // acknowledged.
            let tomb = encode_header(TOMBSTONE_MAGIC, 0, 0, 0, 0, 0);
            let mut st = self.commit.lock();
            if write_at(&self.file, &tomb, marker_at).is_err() {
                st.poisoned = true;
            }
            drop(st);
            self.complete(marker_at, marker_at + REC_HEADER);
            return Err(BlobError::Internal("provider page log commit failed"));
        }
        if opts.fsync_on_commit && self.file.sync_data().is_err() {
            // The marker bytes may or may not be durable; conservatively
            // stop acknowledging anything further.
            self.commit.lock().poisoned = true;
            self.complete(marker_at, marker_at + REC_HEADER);
            return Err(BlobError::Internal("provider page log sync failed"));
        }
        {
            let mut st = self.commit.lock();
            st.next_seq = seq + 1;
            st.durable = marker_at + REC_HEADER;
        }
        self.complete(marker_at, marker_at + REC_HEADER);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Mmap backend
// ---------------------------------------------------------------------------

/// The persistent backend: a crash-consistent page log, memory-mapped
/// read-only once per generation (full capacity, sparse), with pages
/// served as [`PageBuf`] slices of the mapping.
///
/// * **Append** reserves a record range with a CAS on the tail offset
///   (concurrent appenders never interleave bytes), writes
///   `header + payload` with positioned I/O — no lock on the hot path,
///   no user-space copy — then blocks until a group-commit marker
///   covers it: only committed records are acknowledged, and only
///   committed records replay.
/// * **Serve** is `map.slice(payload_range)`: a refcount bump on the
///   generation mapping, zero copies (unix; other platforms degrade to
///   serving the ingested heap buffer — the log still persists).
/// * **Recover** replays the current generation from offset 0,
///   validating each record and making pages visible marker by marker;
///   replay ends at the first invalid or out-of-sequence record, and
///   appends resume at the last durable marker.
/// * **Compact** rewrites live records into the next generation file
///   and atomically swaps it in; see the module docs for the crash
///   story.
pub struct MmapBackend {
    dir: PathBuf,
    capacity: u64,
    opts: LogOptions,
    /// The serving generation. Swapped whole by compaction; read-side
    /// is an uncontended data-plane lock (like the provider's sharded
    /// page index, deliberately outside the lockmeter).
    gen: RwLock<Arc<Generation>>,
    /// Log bytes owed to removed or superseded records.
    dead: AtomicU64,
    /// Auto-trigger backoff after a failed compaction: retry only once
    /// dead bytes reach this floor (0 = no backoff; reset by success).
    compact_floor: AtomicU64,
}

impl MmapBackend {
    /// Open (or create) the page log under `dir` with default
    /// [`LogOptions`]. See [`MmapBackend::open_with`].
    pub fn open(dir: &Path, capacity: u64) -> Result<Self, BlobError> {
        Self::open_with(dir, capacity, LogOptions::default())
    }

    /// Open (or create) the page log under `dir` with room for
    /// `capacity` log bytes per generation, record headers included.
    /// Scans the directory for generation files, keeps the highest
    /// (the newest *renamed* generation — an interrupted compaction's
    /// `.tmp` never wins), removes the debris, and maps the survivor
    /// exactly once. A log that already holds records keeps them —
    /// call [`StorageBackend::recover`] to replay.
    pub fn open_with(dir: &Path, capacity: u64, opts: LogOptions) -> Result<Self, BlobError> {
        std::fs::create_dir_all(dir).map_err(|_| BlobError::Internal("create provider dir"))?;
        let mut newest: Option<u64> = None;
        let mut debris: Vec<PathBuf> = Vec::new();
        let entries =
            std::fs::read_dir(dir).map_err(|_| BlobError::Internal("scan provider dir"))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("pages.g") && name.ends_with(".tmp") {
                // A compaction died before its rename: the swap never
                // happened, the old generation wins.
                debris.push(entry.path());
            } else if let Some(n) = parse_gen_name(name) {
                match newest {
                    Some(best) if best >= n => debris.push(entry.path()),
                    Some(_) | None => {
                        if let Some(best) = newest {
                            debris.push(dir.join(gen_file_name(best)));
                        }
                        newest = Some(n);
                    }
                }
            }
        }
        for stale in debris {
            let _ = std::fs::remove_file(stale);
        }
        let generation =
            Generation::open(dir, newest.unwrap_or(0), capacity, opts.fsync_on_commit)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            capacity: generation.capacity,
            opts,
            gen: RwLock::new(Arc::new(generation)),
            dead: AtomicU64::new(0),
            compact_floor: AtomicU64::new(0),
        })
    }

    /// The directory this backend persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The serving generation's number (0 at creation, +1 per
    /// compaction).
    pub fn generation(&self) -> u64 {
        self.gen.read().number
    }

    /// Committed log bytes of the serving generation (record headers
    /// and markers included).
    pub fn log_bytes(&self) -> u64 {
        self.gen.read().tail.load(Ordering::Relaxed)
    }

    /// The serving generation's log mapping (white-box: tests assert
    /// served pages share this allocation).
    pub fn mapping(&self) -> PageBuf {
        self.gen.read().map.clone()
    }

    /// White-box for crash tests: the raw file of the serving
    /// generation.
    #[cfg(test)]
    fn file_handle(&self) -> File {
        self.gen
            .read()
            .file
            .try_clone()
            .expect("clone log file handle")
    }
}

impl StorageBackend for MmapBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mmap
    }

    fn ingest(
        &self,
        key: &PageKey,
        data: &PageBuf,
        _replaced: Option<u64>,
    ) -> Result<PageBuf, BlobError> {
        let gen = Arc::clone(&self.gen.read());
        let len = data.len() as u64;
        let rec = REC_HEADER + len;
        // Reserve a disjoint record range, keeping headroom for the
        // commit marker that will seal this batch. The log is
        // append-only within a generation, so a re-put appends a fresh
        // record; the superseded one becomes dead bytes (credited via
        // `on_remove` when the index replacement happens) that the next
        // compaction reclaims — `replaced` earns no capacity credit
        // here.
        let start = gen
            .tail
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                cur.checked_add(rec + REC_HEADER)
                    .filter(|&projected| projected <= gen.capacity)
                    .map(|_| cur + rec)
            })
            .map_err(|_| BlobError::Internal("provider page log full"))?;

        let header = encode_header(
            LOG_MAGIC,
            key.blob.0,
            key.write.0,
            key.index,
            len,
            payload_digest(data.as_slice()),
        );
        // Positioned kernel writes, not metered memcpys — the payload
        // goes file-ward the same way gather-write sends it socket-ward.
        let written = write_at(&gen.file, &header, start)
            .and_then(|()| write_at(&gen.file, data.as_slice(), start + REC_HEADER));
        if written.is_err() {
            // The range was reserved but never became a valid record. If
            // we are still the log tail, unreserve it; otherwise later
            // appenders own bytes beyond us, so leave a tombstone replay
            // can step over — a hole here would truncate recovery of
            // every record committed after this failure.
            let rolled_back = gen
                .tail
                .compare_exchange(start + rec, start, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok();
            if !rolled_back {
                let tomb = encode_header(TOMBSTONE_MAGIC, 0, 0, 0, len, 0);
                if write_at(&gen.file, &tomb, start).is_err() {
                    // Not even the tombstone landed: replay will stop at
                    // this hole, so nothing beyond it may be
                    // acknowledged ever again.
                    gen.commit.lock().poisoned = true;
                }
                self.dead.fetch_add(rec, Ordering::Relaxed);
                // Either way the range is settled — committers must not
                // stall waiting for it.
                gen.complete(start, start + rec);
            }
            return Err(BlobError::Internal("provider page log write failed"));
        }

        gen.complete(start, start + rec);
        // Record-then-commit: the append is only acknowledged once a
        // marker covers it (group commit amortizes the marker and the
        // optional fsync across concurrent appenders).
        gen.commit_covering(start + rec, &self.opts)?;

        // Serve the mapped bytes (unix: the MAP_SHARED mapping sees the
        // write through the unified page cache). Elsewhere the mapping
        // is a snapshot, so serve the ingested heap buffer instead.
        #[cfg(unix)]
        {
            let s = (start + REC_HEADER) as usize;
            Ok(gen.map.slice(s..s + data.len()))
        }
        #[cfg(not(unix))]
        {
            Ok(data.clone())
        }
    }

    fn on_remove(&self, len: u64) {
        // The record stays in the log but is now dead weight; the next
        // compaction reclaims it (header included).
        self.dead.fetch_add(REC_HEADER + len, Ordering::Relaxed);
    }

    fn resident(&self) -> ResidentBytes {
        ResidentBytes {
            heap: 0,
            mapped: self.log_bytes(),
        }
    }

    fn dead_bytes(&self) -> u64 {
        self.dead.load(Ordering::Relaxed)
    }

    fn wants_compaction(&self) -> bool {
        let dead = self.dead.load(Ordering::Relaxed);
        // `compact_floor` backs the automatic trigger off after a
        // failed compaction: retry only once dead bytes have grown
        // past the floor, not on every subsequent remove.
        let floor = self
            .compact_floor
            .load(Ordering::Relaxed)
            .max(self.opts.compact_min_dead_bytes);
        self.opts.compact_dead_ratio > 0.0
            && dead >= floor
            && dead as f64 >= self.opts.compact_dead_ratio * self.log_bytes() as f64
    }

    fn compact_prepare(
        &self,
        live: &[(PageKey, PageBuf)],
    ) -> Result<Option<PreparedCompaction>, BlobError> {
        let old = Arc::clone(&self.gen.read());
        let next = old.number + 1;
        let tmp_path = self.dir.join(format!("{}.tmp", gen_file_name(next)));
        match self.write_snapshot(&old, next, &tmp_path, live) {
            Ok(prepared) => Ok(Some(prepared)),
            Err(e) => {
                // Don't leak the half-written file until the next
                // restart, and back the auto-trigger off so a persistent
                // failure doesn't turn every remove into a full-log
                // rewrite.
                let _ = std::fs::remove_file(&tmp_path);
                let dead = self.dead.load(Ordering::Relaxed);
                self.compact_floor
                    .store(dead.saturating_mul(2), Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn compact_install(
        &self,
        prepared: PreparedCompaction,
        current: &[(PageKey, PageBuf)],
    ) -> Result<Option<CompactOutcome>, BlobError> {
        let tmp_path = prepared.tmp_path.clone();
        match self.catch_up_and_swap(prepared, current) {
            Ok(outcome) => {
                self.compact_floor.store(0, Ordering::Relaxed);
                Ok(Some(outcome))
            }
            Err(e) => {
                // Same cleanup as a failed prepare: the serving
                // generation is untouched (nothing fails past the
                // rename), so only the staged file needs removing.
                let _ = std::fs::remove_file(&tmp_path);
                let dead = self.dead.load(Ordering::Relaxed);
                self.compact_floor
                    .store(dead.saturating_mul(2), Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn recover(&self) -> Result<Vec<(PageKey, PageBuf)>, BlobError> {
        let gen = Arc::clone(&self.gen.read());
        let limit = gen.map.len() as u64;
        let mut visible = Vec::new();
        let mut pending: Vec<(PageKey, std::ops::Range<usize>)> = Vec::new();
        let mut off = 0u64;
        let mut durable = 0u64;
        let mut seq = 0u64;
        loop {
            match gen.parse_record(off, limit) {
                Some(LogRecord::Page(key, end)) => {
                    pending.push((key, (off + REC_HEADER) as usize..end as usize));
                    off = end;
                }
                Some(LogRecord::Skip(end)) => off = end,
                Some(LogRecord::Commit {
                    seq: s,
                    covered_from,
                }) => {
                    // A checksum-valid marker that is out of sequence or
                    // claims the wrong coverage is stale bytes from an
                    // earlier incarnation, not a commit: replay ends at
                    // the previous durable point.
                    if s != seq || covered_from != durable {
                        break;
                    }
                    for (key, range) in pending.drain(..) {
                        visible.push((key, gen.map.slice(range)));
                    }
                    off += REC_HEADER;
                    durable = off;
                    seq += 1;
                }
                None => break,
            }
        }
        // Everything beyond the last marker — complete-but-uncommitted
        // records included — was never acknowledged; appends resume
        // over it.
        {
            let mut st = gen.commit.lock();
            st.durable = durable;
            st.frontier = durable;
            st.completed.clear();
            st.next_seq = seq;
            st.committing = false;
            st.poisoned = false;
        }
        gen.tail.store(durable, Ordering::Relaxed);
        Ok(visible)
    }

    fn sync(&self) -> Result<(), BlobError> {
        self.gen
            .read()
            .file
            .sync_data()
            .map_err(|_| BlobError::Internal("provider page log sync failed"))
    }
}

impl MmapBackend {
    /// Compaction phase 1 body: write the `live` snapshot into
    /// generation `next` under `tmp_path` (records in index order,
    /// sealed by one commit marker — the payload bytes come straight
    /// off the old mapping, a kernel-side rewrite, not a metered copy),
    /// fsync, and map it. Nothing here touches the serving generation,
    /// so concurrent ingests and removes are fine — the install phase
    /// reconciles them.
    fn write_snapshot(
        &self,
        old: &Arc<Generation>,
        next: u64,
        tmp_path: &Path,
        live: &[(PageKey, PageBuf)],
    ) -> Result<PreparedCompaction, BlobError> {
        let final_path = self.dir.join(gen_file_name(next));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(tmp_path)
            .map_err(|_| BlobError::Internal("create compaction file"))?;
        file.set_len(self.capacity)
            .map_err(|_| BlobError::Internal("extend compaction file"))?;
        let mut off = 0u64;
        let mut ranges: Vec<(PageKey, usize, usize)> = Vec::with_capacity(live.len());
        for (key, buf) in live {
            let len = buf.len() as u64;
            if off + REC_HEADER + len + REC_HEADER > self.capacity {
                return Err(BlobError::Internal("compaction exceeds log capacity"));
            }
            let header = encode_header(
                LOG_MAGIC,
                key.blob.0,
                key.write.0,
                key.index,
                len,
                payload_digest(buf.as_slice()),
            );
            write_at(&file, &header, off)
                .and_then(|()| write_at(&file, buf.as_slice(), off + REC_HEADER))
                .map_err(|_| BlobError::Internal("compaction write failed"))?;
            ranges.push((*key, (off + REC_HEADER) as usize, buf.len()));
            off += REC_HEADER + len;
        }
        let marker = encode_header(COMMIT_MAGIC, 0, 0, 0, 0, 0);
        write_at(&file, &marker, off).map_err(|_| BlobError::Internal("compaction seal failed"))?;
        let durable = off + REC_HEADER;
        file.sync_data()
            .map_err(|_| BlobError::Internal("compaction sync failed"))?;

        // Map now, not at install (the mapping is inode-based, not
        // name-based): catch-up appends written through the file are
        // coherent with this mapping, and install must not be able to
        // fail past its swap point.
        let map = PageBuf::map_file_tagged(&file, next)
            .map_err(|_| BlobError::Internal("map compaction file"))?;

        Ok(PreparedCompaction {
            next,
            file,
            tmp_path: tmp_path.to_path_buf(),
            final_path,
            durable,
            ranges,
            map,
            // lint: allow(unmetered-copy) — live-record index snapshot for compaction
            // planning, not payload bytes
            snapshot: live.to_vec(),
            old_number: old.number,
        })
    }

    /// Compaction phase 2 body (caller holds the maintenance gate):
    /// append every `current` entry that is not byte-identical to its
    /// snapshot record — pages ingested or re-put during the prepare
    /// window — after the sealed snapshot, under a second commit marker;
    /// then rename, swap the serving generation, and unlink the old
    /// file. Snapshot records whose key was superseded or removed during
    /// the window stay in the new file as its opening dead bytes.
    fn catch_up_and_swap(
        &self,
        prepared: PreparedCompaction,
        current: &[(PageKey, PageBuf)],
    ) -> Result<CompactOutcome, BlobError> {
        let old = Arc::clone(&self.gen.read());
        if old.number != prepared.old_number {
            // Another install won the race (callers serialize, so this
            // is defense in depth): the snapshot no longer describes the
            // serving generation's lineage.
            return Err(BlobError::Internal("stale prepared compaction"));
        }
        let old_bytes = old.tail.load(Ordering::Relaxed);
        let PreparedCompaction {
            next,
            file,
            tmp_path,
            final_path,
            durable: sealed,
            ranges,
            map,
            snapshot,
            old_number: _,
        } = prepared;

        // Identity-match `current` against the snapshot: a key whose
        // serving buffer is still the *same slice* (pointer + length)
        // was untouched during the window and serves from its snapshot
        // record; anything else — new key, or re-put (even of identical
        // bytes, which may occupy a fresh allocation) — is caught up by
        // appending. `same_allocation` would be too coarse: two slices
        // of one mapping share an allocation without being the same
        // bytes.
        let mut snap_idx: std::collections::HashMap<PageKey, usize> =
            std::collections::HashMap::new();
        for (i, (key, _)) in snapshot.iter().enumerate() {
            snap_idx.insert(*key, i);
        }
        let identical = |i: usize, buf: &PageBuf| {
            let s = snapshot[i].1.as_slice();
            let c = buf.as_slice();
            std::ptr::eq(s.as_ptr(), c.as_ptr()) && s.len() == c.len()
        };

        let mut off = sealed;
        let mut placed: Vec<(usize, usize)> = Vec::with_capacity(current.len());
        let mut matched = vec![false; snapshot.len()];
        let mut caught_up = 0usize;
        for (key, buf) in current {
            match snap_idx.get(key) {
                Some(&i) if identical(i, buf) => {
                    matched[i] = true;
                    let (_, s, l) = ranges[i];
                    placed.push((s, l));
                }
                _ => {
                    let len = buf.len() as u64;
                    if off + REC_HEADER + len + REC_HEADER > self.capacity {
                        return Err(BlobError::Internal("compaction exceeds log capacity"));
                    }
                    let header = encode_header(
                        LOG_MAGIC,
                        key.blob.0,
                        key.write.0,
                        key.index,
                        len,
                        payload_digest(buf.as_slice()),
                    );
                    write_at(&file, &header, off)
                        .and_then(|()| write_at(&file, buf.as_slice(), off + REC_HEADER))
                        .map_err(|_| BlobError::Internal("compaction catch-up write failed"))?;
                    placed.push(((off + REC_HEADER) as usize, buf.len()));
                    off += REC_HEADER + len;
                    caught_up += 1;
                }
            }
        }
        let (durable, next_seq) = if caught_up > 0 {
            // Seal the catch-up batch with marker #1 covering from the
            // snapshot's durable point — exactly the shape recovery
            // replays — and make it durable before the swap.
            let marker = encode_header(COMMIT_MAGIC, 1, sealed, 0, 0, 0);
            write_at(&file, &marker, off)
                .map_err(|_| BlobError::Internal("compaction catch-up seal failed"))?;
            file.sync_data()
                .map_err(|_| BlobError::Internal("compaction catch-up sync failed"))?;
            (off + REC_HEADER, 2)
        } else {
            (sealed, 1)
        };
        // Snapshot records superseded or removed during the window open
        // the new generation already dead; carry them so the next
        // trigger fires on truth. (A removal's disappearance was never
        // marker-covered — recovery has always resurrected removed-
        // but-uncompacted records; the catch-up batch narrows that
        // window, it doesn't change the contract.)
        let dead_in_new: u64 = matched
            .iter()
            .zip(&ranges)
            .filter(|(&hit, _)| !hit)
            .map(|(_, &(_, _, l))| REC_HEADER + l as u64)
            .sum();

        // The swap point: rename is atomic, and open() prefers the
        // highest *renamed* generation — before this line a crash
        // recovers the old generation, after it the new one.
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|_| BlobError::Internal("compaction swap failed"))?;
        let dir_synced = File::open(&self.dir).and_then(|d| d.sync_all());
        if dir_synced.is_err() && self.opts.fsync_on_commit {
            // The power-loss regime cannot tolerate an un-durable
            // rename (a crash could revert the directory to the old
            // generation, dropping post-swap commits). Undo the swap so
            // disk and memory agree again; if even that fails, poison
            // the old generation so nothing further gets acknowledged.
            if std::fs::rename(&final_path, &tmp_path).is_err() {
                old.commit.lock().poisoned = true;
            }
            return Err(BlobError::Internal("compaction dir sync failed"));
        }

        let entries: Vec<(PageKey, PageBuf)> = current
            .iter()
            .zip(&placed)
            .map(|((key, _), &(s, l))| (*key, map.slice(s..s + l)))
            .collect();
        let generation = Generation {
            number: next,
            file,
            map,
            capacity: self.capacity,
            tail: AtomicU64::new(durable),
            commit: Mutex::new(CommitState {
                durable,
                frontier: durable,
                next_seq,
                ..CommitState::default()
            }),
            commit_cv: Condvar::new(),
            path: final_path,
        };
        let old_path = old.path.clone();
        *self.gen.write() = Arc::new(generation);
        // Readers holding slices of the old mapping keep it alive by
        // refcount; the unlink only drops the name.
        let _ = std::fs::remove_file(&old_path);
        self.dead.store(dead_in_new, Ordering::Relaxed);
        Ok(CompactOutcome {
            entries,
            report: CompactReport {
                generation: next,
                old_log_bytes: old_bytes,
                new_log_bytes: durable,
                reclaimed_bytes: old_bytes.saturating_sub(durable),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_util::copymeter;

    fn key(w: u64, i: u64) -> PageKey {
        PageKey {
            blob: BlobId(1),
            write: WriteId(w),
            index: i,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("blobseer-backend-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// A page record's on-disk footprint.
    fn rec(len: u64) -> u64 {
        REC_HEADER + len
    }

    #[test]
    fn memory_backend_enforces_capacity_with_replacement_credit() {
        let b = MemoryBackend::new(8192);
        let page = PageBuf::from_vec(vec![7u8; 4096]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        b.ingest(&key(1, 1), &page, None).unwrap();
        assert!(b.ingest(&key(1, 2), &page, None).is_err(), "full");
        // Idempotent re-put: the replaced length is a check-time credit;
        // the caller reports the actually freed entry via on_remove
        // (here: the index replacement frees the old 4096).
        b.ingest(&key(1, 0), &page, Some(4096)).unwrap();
        b.on_remove(4096);
        assert_eq!(
            b.resident(),
            ResidentBytes {
                heap: 8192,
                mapped: 0
            }
        );
        b.on_remove(4096);
        assert_eq!(b.resident().heap, 4096);
        assert_eq!(b.dead_bytes(), 0, "the heap frees eagerly");
        assert!(!b.wants_compaction());
        assert!(b.compact(&[]).unwrap().is_none(), "no-op path");
    }

    #[test]
    fn memory_backend_accounting_cannot_drift_under_racing_re_puts() {
        // Model two clients re-putting the same key concurrently: both
        // probe before either inserts, so both ingest with no credit;
        // the index replacement then frees exactly one old entry. The
        // heap counter must land on the truth (one live entry), not
        // accumulate a phantom.
        let b = MemoryBackend::new(1 << 20);
        let page = PageBuf::from_vec(vec![7u8; 4096]);
        b.ingest(&key(1, 0), &page, None).unwrap(); // first put, inserts fresh
        b.ingest(&key(1, 0), &page, None).unwrap(); // racer probed None too
        b.on_remove(4096); // second insert replaced the first entry
        assert_eq!(b.resident().heap, 4096, "exactly one live entry");
        b.on_remove(4096); // eventual remove of the key
        assert_eq!(b.resident().heap, 0, "no phantom bytes remain");
    }

    #[test]
    fn mmap_backend_appends_serves_mapped_and_recovers() {
        let dir = temp_dir("roundtrip");
        let b = MmapBackend::open(&dir, 1 << 20).unwrap();
        let p0: PageBuf = PageBuf::from_vec((0..4096u32).map(|i| (i % 251) as u8).collect());
        let p1: PageBuf = PageBuf::from_vec(vec![9u8; 4096]);

        let before = copymeter::thread_snapshot();
        let s0 = b.ingest(&key(1, 0), &p0, None).unwrap();
        let s1 = b.ingest(&key(1, 1), &p1, None).unwrap();
        assert_eq!(
            before.bytes_since(),
            0,
            "appending to and serving from the log must meter zero copies"
        );
        assert_eq!(s0, p0);
        assert_eq!(s1, p1);
        #[cfg(unix)]
        {
            assert!(s0.is_mapped() && s1.is_mapped());
            assert!(s0.same_allocation(&b.mapping()));
            assert_eq!(s0.mapping_generation(), Some(0));
        }
        // Two records, each sealed by its own marker (single-threaded
        // appends commit one by one).
        assert_eq!(b.resident().mapped, 2 * rec(4096) + 2 * REC_HEADER);
        assert_eq!(b.resident().heap, 0);

        // A fresh backend on the same directory replays both records.
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 20).unwrap();
        let before = copymeter::thread_snapshot();
        let recovered = b2.recover().unwrap();
        assert_eq!(before.bytes_since(), 0, "recovery lends from the mapping");
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].0, key(1, 0));
        assert_eq!(recovered[0].1, p0);
        assert_eq!(recovered[1].0, key(1, 1));
        assert_eq!(recovered[1].1, p1);
        assert!(recovered.iter().all(|(_, p)| p.is_mapped()));
        // Appends resume after the replayed durable tail.
        let replayed_tail = 2 * rec(4096) + 2 * REC_HEADER;
        assert_eq!(b2.log_bytes(), replayed_tail);
        b2.ingest(&key(2, 0), &p0, None).unwrap();
        assert_eq!(b2.log_bytes(), replayed_tail + rec(4096) + REC_HEADER);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_tail_is_discarded_and_overwritten() {
        // A complete record with no covering marker (the crash hit
        // between the record landing and the commit) is exactly an
        // unacknowledged append: replay must drop it and let appends
        // resume over it.
        let dir = temp_dir("uncommitted");
        let pa = PageBuf::from_vec(vec![1u8; 512]);
        let pb = PageBuf::from_vec(vec![2u8; 512]);
        let committed_end;
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &pa, None).unwrap();
            committed_end = b.log_bytes();
            // Handcraft a complete-but-uncommitted record at the tail.
            let h = encode_header(LOG_MAGIC, 1, 7, 7, 512, payload_digest(pb.as_slice()));
            write_at(&b.file_handle(), &h, committed_end).unwrap();
            write_at(&b.file_handle(), pb.as_slice(), committed_end + REC_HEADER).unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 1, "uncommitted tail is not recovered");
        assert_eq!(recovered[0].0, key(1, 0));
        assert_eq!(b.log_bytes(), committed_end, "appends resume at the marker");
        // The next append overwrites the stale tail and commits.
        let pc = PageBuf::from_vec(vec![3u8; 256]);
        b.ingest(&key(2, 0), &pc, None).unwrap();
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b2.recover().unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].0, key(2, 0));
        assert_eq!(recovered[1].1, pc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_tombstone_directly_before_a_marker() {
        // A failed concurrent append leaves a tombstone; the batch's
        // marker seals right past it. Replay must step over the
        // tombstone and keep every committed page — including when the
        // tombstone is the last record before the marker.
        let dir = temp_dir("tombstone");
        let pa = PageBuf::from_vec(vec![1u8; 512]);
        let pc = PageBuf::from_vec(vec![3u8; 512]);
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &pa, None).unwrap();
            let f = b.file_handle();
            let tail = b.log_bytes();
            // Handcraft the aftermath of a batch {page C, failed append}
            // sealed by one marker: C's record, a tombstone over the
            // failed 512-byte range, then the marker covering both.
            let c_at = tail;
            let ch = encode_header(LOG_MAGIC, 1, 2, 7, 512, payload_digest(pc.as_slice()));
            write_at(&f, &ch, c_at).unwrap();
            write_at(&f, pc.as_slice(), c_at + REC_HEADER).unwrap();
            let tomb_at = c_at + rec(512);
            let tomb = encode_header(TOMBSTONE_MAGIC, 0, 0, 0, 512, 0);
            write_at(&f, &tomb, tomb_at).unwrap();
            let marker_at = tomb_at + rec(512);
            // seq 1: the ingest above already sealed marker 0.
            let marker = encode_header(COMMIT_MAGIC, 1, tail, 0, 0, 0);
            write_at(&f, &marker, marker_at).unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 2, "tombstone skipped, both pages kept");
        assert_eq!(recovered[0].0, key(1, 0));
        assert_eq!(recovered[0].1, pa);
        assert_eq!(recovered[1].0, key(2, 7));
        assert_eq!(recovered[1].1, pc);
        // Appends resume after the second marker, not at the hole.
        assert_eq!(
            b.log_bytes(),
            rec(512) + REC_HEADER + 2 * rec(512) + REC_HEADER
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_sequence_marker_ends_replay() {
        // A marker whose check word is valid but whose sequence number
        // (or coverage) is wrong is stale bytes from an earlier
        // incarnation, not a commit: replay must stop at the previous
        // durable point and never surface the records it "covers".
        let dir = temp_dir("ooseq");
        let pa = PageBuf::from_vec(vec![1u8; 512]);
        let pb = PageBuf::from_vec(vec![2u8; 512]);
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &pa, None).unwrap();
            let f = b.file_handle();
            let tail = b.log_bytes();
            let bh = encode_header(LOG_MAGIC, 1, 9, 9, 512, payload_digest(pb.as_slice()));
            write_at(&f, &bh, tail).unwrap();
            write_at(&f, pb.as_slice(), tail + REC_HEADER).unwrap();
            // A checksum-valid marker with seq 7 (expected: 1).
            let marker = encode_header(COMMIT_MAGIC, 7, tail, 0, 0, 0);
            write_at(&f, &marker, tail + rec(512)).unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 1, "out-of-sequence marker commits nothing");
        assert_eq!(recovered[0].0, key(1, 0));
        assert_eq!(b.log_bytes(), rec(512) + REC_HEADER);

        // Same story for a marker with the right sequence number but
        // the wrong coverage offset.
        let f = b.file_handle();
        let tail = b.log_bytes();
        let bh = encode_header(LOG_MAGIC, 1, 9, 9, 512, payload_digest(pb.as_slice()));
        write_at(&f, &bh, tail).unwrap();
        write_at(&f, pb.as_slice(), tail + REC_HEADER).unwrap();
        let marker = encode_header(COMMIT_MAGIC, 1, tail + 8, 0, 0, 0);
        write_at(&f, &marker, tail + rec(512)).unwrap();
        drop(f);
        drop(b);
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        assert_eq!(b.recover().unwrap().len(), 1, "wrong coverage is no commit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rejects_torn_payload() {
        // A record whose header is intact but whose payload bytes were
        // torn (crash between the two positioned writes) must fail the
        // digest and never be served — nor may any marker beyond the
        // tear commit anything.
        let dir = temp_dir("torn");
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &PageBuf::from_vec(vec![1u8; 512]), None)
                .unwrap();
            b.ingest(&key(1, 1), &PageBuf::from_vec(vec![2u8; 512]), None)
                .unwrap();
            // Tear one payload byte of the second record.
            let second_payload = rec(512) + REC_HEADER + REC_HEADER;
            write_at(&b.file_handle(), &[0xEE], second_payload + 100).unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 1, "torn record rejected by digest");
        assert_eq!(recovered[0].0, key(1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_reservation_reserves_nothing() {
        let dir = temp_dir("rollback");
        // Room for exactly one 512-byte record + its marker.
        let b = MmapBackend::open(&dir, rec(512) + REC_HEADER).unwrap();
        let page = PageBuf::from_vec(vec![1u8; 512]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        let tail = b.log_bytes();
        // Log full: the reservation itself fails, offset untouched.
        assert!(b.ingest(&key(1, 1), &page, None).is_err());
        assert_eq!(b.log_bytes(), tail, "failed reservation reserves nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_backend_recovery_stops_at_corruption() {
        let dir = temp_dir("corrupt");
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        let page = PageBuf::from_vec(vec![5u8; 512]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        b.ingest(&key(1, 1), &page, None).unwrap();
        // Flip a byte in the second record's header check word.
        let second = rec(512) + REC_HEADER + 40;
        write_at(&b.file_handle(), &[0xFF], second).unwrap();
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 16).unwrap();
        let recovered = b2.recover().unwrap();
        assert_eq!(recovered.len(), 1, "replay stops at the corrupt record");
        assert_eq!(recovered[0].0, key(1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_backend_enforces_log_capacity_and_tracks_dead_bytes() {
        let dir = temp_dir("capacity");
        // Room for two records, each with its own marker.
        let b = MmapBackend::open(&dir, 2 * (rec(1024) + REC_HEADER)).unwrap();
        let page = PageBuf::from_vec(vec![1u8; 1024]);
        b.ingest(&key(1, 0), &page, None).unwrap();
        b.ingest(&key(1, 1), &page, None).unwrap();
        let err = b.ingest(&key(1, 2), &page, None);
        assert!(err.is_err(), "log full");
        // Removes reclaim nothing immediately — the record becomes dead
        // bytes for compaction.
        b.on_remove(1024);
        assert!(b.ingest(&key(1, 3), &page, None).is_err());
        assert_eq!(b.resident().mapped, 2 * (rec(1024) + REC_HEADER));
        assert_eq!(b.dead_bytes(), rec(1024));
        b.sync().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_group_commit_and_all_recover() {
        // The concurrency story end to end: many appenders, every
        // acknowledged page recovers after "crash" (drop + reopen), and
        // group commit means strictly fewer markers than appends.
        let dir = temp_dir("group");
        let pages: Vec<(PageKey, PageBuf)> = (0..64u64)
            .map(|i| {
                let len = 128 + (i as usize % 512);
                (
                    key(i, 0),
                    PageBuf::from_vec((0..len).map(|j| (i as u8).wrapping_mul(j as u8)).collect()),
                )
            })
            .collect();
        {
            let b = Arc::new(MmapBackend::open(&dir, 1 << 20).unwrap());
            std::thread::scope(|s| {
                for chunk in pages.chunks(8) {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for (k, p) in chunk {
                            b.ingest(k, p, None).unwrap();
                        }
                    });
                }
            });
            let payload: u64 = pages.iter().map(|(_, p)| rec(p.len() as u64)).sum();
            let markers = (b.log_bytes() - payload) / REC_HEADER;
            assert!((1..=64).contains(&markers), "markers: {markers}");
        }
        let b = MmapBackend::open(&dir, 1 << 20).unwrap();
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), pages.len(), "every acknowledged page");
        let by_key: std::collections::HashMap<_, _> = recovered.into_iter().collect();
        for (k, p) in &pages {
            assert_eq!(by_key.get(k), Some(p), "page {k:?} byte-identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_on_commit_appends_and_recovers() {
        let dir = temp_dir("fsync");
        let opts = LogOptions {
            fsync_on_commit: true,
            ..LogOptions::default()
        };
        {
            let b = MmapBackend::open_with(&dir, 1 << 16, opts).unwrap();
            b.ingest(&key(1, 0), &PageBuf::from_vec(vec![8u8; 512]), None)
                .unwrap();
        }
        let b = MmapBackend::open_with(&dir, 1 << 16, opts).unwrap();
        assert_eq!(b.recover().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_window_still_commits_single_appends() {
        let dir = temp_dir("window");
        let opts = LogOptions {
            group_commit_window: Duration::from_micros(200),
            ..LogOptions::default()
        };
        let b = MmapBackend::open_with(&dir, 1 << 16, opts).unwrap();
        b.ingest(&key(1, 0), &PageBuf::from_vec(vec![4u8; 256]), None)
            .unwrap();
        assert_eq!(b.log_bytes(), rec(256) + REC_HEADER);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_space_and_reserves_only_one_generation() {
        let dir = temp_dir("compact");
        let b = MmapBackend::open(&dir, 1 << 20).unwrap();
        let pages: Vec<(PageKey, PageBuf)> = (0..16u64)
            .map(|i| (key(1, i), PageBuf::from_vec(vec![i as u8; 1024])))
            .collect();
        let mut served = Vec::new();
        for (k, p) in &pages {
            served.push((*k, b.ingest(k, p, None).unwrap()));
        }
        // Drop the even-indexed half.
        let (dead, live): (Vec<_>, Vec<_>) =
            served.into_iter().partition(|(k, _)| k.index % 2 == 0);
        for (_, p) in &dead {
            b.on_remove(p.len() as u64);
        }
        assert_eq!(b.dead_bytes(), 8 * rec(1024));
        assert!(b.wants_compaction() || b.dead_bytes() < 64 * 1024);
        let old_bytes = b.log_bytes();
        let old_mapping = b.mapping();

        // A reader holds a page from before the swap.
        let pre_swap_page = live[0].1.clone();

        let before = copymeter::thread_snapshot();
        let outcome = b.compact(&live).unwrap().expect("mmap compacts");
        assert_eq!(before.bytes_since(), 0, "compaction is a kernel rewrite");
        assert_eq!(outcome.report.old_log_bytes, old_bytes);
        assert_eq!(outcome.report.new_log_bytes, 8 * rec(1024) + REC_HEADER);
        assert_eq!(
            outcome.report.reclaimed_bytes,
            old_bytes - outcome.report.new_log_bytes
        );
        assert!(
            outcome.report.reclaimed_bytes as f64 >= 0.9 * b.dead_bytes().max(8 * rec(1024)) as f64,
            "at least the dead bytes come back"
        );
        assert_eq!(outcome.report.generation, 1);
        assert_eq!(b.generation(), 1);
        assert_eq!(b.dead_bytes(), 0, "dead bytes reset with the generation");
        // resident() reports exactly the new generation — never the sum
        // of both (the page exists in two files during the window).
        assert_eq!(b.resident().mapped, outcome.report.new_log_bytes);

        // Fresh entries serve from the new mapping, old readers keep
        // the old one alive by refcount.
        for (k, p) in &outcome.entries {
            let (_, want) = live.iter().find(|(lk, _)| lk == k).unwrap();
            assert_eq!(p, want, "live page {k:?} carried byte-identical");
            #[cfg(unix)]
            assert_eq!(p.mapping_generation(), Some(1));
        }
        #[cfg(unix)]
        {
            assert_eq!(pre_swap_page.mapping_generation(), Some(0));
            assert!(pre_swap_page.same_allocation(&old_mapping));
            assert_eq!(pre_swap_page.as_slice()[0], 1, "old slice still readable");
        }
        assert!(
            !dir.join(gen_file_name(0)).exists(),
            "old generation unlinked"
        );
        assert!(dir.join(gen_file_name(1)).exists());

        // The compacted generation replays on restart — only the live
        // half.
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 20).unwrap();
        let recovered = b2.recover().unwrap();
        assert_eq!(recovered.len(), 8);
        for (k, p) in &recovered {
            let (_, want) = live.iter().find(|(lk, _)| lk == k).unwrap();
            assert_eq!(p, want);
        }
        // And appends continue on the new generation.
        b2.ingest(&key(9, 0), &PageBuf::from_vec(vec![7u8; 128]), None)
            .unwrap();
        assert_eq!(b2.generation(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_catches_up_mutations_from_the_prepare_window() {
        // The two-phase protocol under fire: mutations land *between*
        // prepare and install — a re-put, a brand-new key, a removal —
        // and install reconciles all three with a catch-up batch under
        // a second marker, durable across a crash.
        let dir = temp_dir("two-phase");
        let b = MmapBackend::open(&dir, 1 << 20).unwrap();
        let keep = key(1, 0);
        let reput = key(1, 1);
        let gone = key(1, 2);
        let v_keep = b
            .ingest(&keep, &PageBuf::from_vec(vec![1u8; 256]), None)
            .unwrap();
        let v_old = b
            .ingest(&reput, &PageBuf::from_vec(vec![2u8; 256]), None)
            .unwrap();
        let v_gone = b
            .ingest(&gone, &PageBuf::from_vec(vec![3u8; 256]), None)
            .unwrap();

        // Phase 1 against the index as of now.
        let snapshot = vec![
            (keep, v_keep.clone()),
            (reput, v_old.clone()),
            (gone, v_gone.clone()),
        ];
        let prepared = b
            .compact_prepare(&snapshot)
            .unwrap()
            .expect("mmap prepares");

        // The window: everything a concurrent writer can do.
        let v_new = b
            .ingest(&reput, &PageBuf::from_vec(vec![9u8; 300]), Some(256))
            .unwrap();
        b.on_remove(256); // the superseded `reput` record
        let fresh = key(2, 0);
        let v_fresh = b
            .ingest(&fresh, &PageBuf::from_vec(vec![7u8; 128]), None)
            .unwrap();
        b.on_remove(256); // `gone` removed outright

        // Phase 2 against the index as of *install* time.
        let current = vec![
            (keep, v_keep.clone()),
            (reput, v_new.clone()),
            (fresh, v_fresh.clone()),
        ];
        let before = copymeter::thread_snapshot();
        let outcome = b
            .compact_install(prepared, &current)
            .unwrap()
            .expect("mmap installs");
        assert_eq!(
            before.bytes_since(),
            0,
            "catch-up is a kernel rewrite like the snapshot"
        );
        assert_eq!(outcome.report.generation, 1);
        assert_eq!(b.generation(), 1);

        // Entries re-point the whole current index, in order,
        // byte-identical, all served from the new mapping.
        assert_eq!(outcome.entries.len(), current.len());
        for ((k, p), (ck, cp)) in outcome.entries.iter().zip(&current) {
            assert_eq!(k, ck);
            assert_eq!(p.as_slice(), cp.as_slice());
            #[cfg(unix)]
            assert_eq!(p.mapping_generation(), Some(1));
        }

        // The stale snapshot records (superseded `reput`, removed
        // `gone`) open the new generation already dead.
        assert_eq!(b.dead_bytes(), 2 * rec(256));

        // Crash + reopen: the catch-up batch replays after the
        // snapshot, so `reput` recovers its NEW bytes and `fresh`
        // exists. `gone` resurrects from its stale snapshot record —
        // removal durability has always waited for a compaction that
        // sees the key absent, and the window removal happened after
        // this one's snapshot.
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 20).unwrap();
        let recovered = b2.recover().unwrap();
        assert_eq!(
            recovered.len(),
            5,
            "3 snapshot + 2 catch-up, dupes included"
        );
        let by_key: std::collections::HashMap<_, _> = recovered.into_iter().collect();
        assert_eq!(by_key[&keep].as_slice(), &[1u8; 256][..]);
        assert_eq!(by_key[&reput].as_slice(), &[9u8; 300][..], "re-put wins");
        assert_eq!(by_key[&fresh].as_slice(), &[7u8; 128][..]);
        assert_eq!(by_key[&gone].as_slice(), &[3u8; 256][..]);
        // And appends continue over the catch-up marker.
        b2.ingest(&key(9, 9), &PageBuf::from_vec(vec![6u8; 64]), None)
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_with_no_window_mutations_degenerates_to_the_one_shot_path() {
        // Identity-matching must not append anything when nothing
        // moved: same file shape as the one-shot compact.
        let dir = temp_dir("two-phase-quiet");
        let b = MmapBackend::open(&dir, 1 << 20).unwrap();
        let k = key(1, 0);
        let v = b
            .ingest(&k, &PageBuf::from_vec(vec![5u8; 512]), None)
            .unwrap();
        let live = vec![(k, v)];
        let prepared = b.compact_prepare(&live).unwrap().unwrap();
        let outcome = b.compact_install(prepared, &live).unwrap().unwrap();
        assert_eq!(outcome.report.new_log_bytes, rec(512) + REC_HEADER);
        assert_eq!(b.dead_bytes(), 0);
        drop(b);
        let b2 = MmapBackend::open(&dir, 1 << 20).unwrap();
        assert_eq!(b2.recover().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_before_rename_recovers_old_generation() {
        // Crash after the new generation file is written but before the
        // rename: the `.tmp` never wins; open removes it and replays
        // the old generation in full.
        let dir = temp_dir("interrupted-tmp");
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &PageBuf::from_vec(vec![1u8; 512]), None)
                .unwrap();
            // Half-done compaction debris: a would-be generation 1
            // written under its temp name.
            std::fs::write(dir.join("pages.g1.log.tmp"), b"half-written").unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        assert_eq!(b.generation(), 0, "the un-renamed generation never wins");
        assert_eq!(b.recover().unwrap().len(), 1);
        assert!(!dir.join("pages.g1.log.tmp").exists(), "debris removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_compaction_after_rename_recovers_new_generation() {
        // Crash after the rename but before the old file is unlinked:
        // both generations present; the newest (renamed, hence sealed)
        // one wins and the old file is removed at open.
        let dir = temp_dir("interrupted-both");
        let live: Vec<(PageKey, PageBuf)> = vec![(key(1, 1), PageBuf::from_vec(vec![2u8; 512]))];
        {
            let b = MmapBackend::open(&dir, 1 << 16).unwrap();
            b.ingest(&key(1, 0), &PageBuf::from_vec(vec![1u8; 512]), None)
                .unwrap();
            b.ingest(&key(1, 1), &live[0].1, None).unwrap();
            b.on_remove(512);
            b.compact(&live).unwrap().expect("compacts");
            // Re-create the old generation file as the crash would have
            // left it (compact unlinked it; put it back from a byte
            // copy so both files coexist).
            std::fs::write(dir.join(gen_file_name(0)), b"stale old generation").unwrap();
        }
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        assert_eq!(b.generation(), 1, "the renamed generation wins");
        let recovered = b.recover().unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, key(1, 1));
        assert_eq!(recovered[0].1, live[0].1);
        assert!(!dir.join(gen_file_name(0)).exists(), "old file removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let dir = temp_dir("empty");
        let b = MmapBackend::open(&dir, 1 << 16).unwrap();
        assert!(b.recover().unwrap().is_empty());
        assert_eq!(b.log_bytes(), 0);
        assert_eq!(b.generation(), 0);
        assert_eq!(b.kind(), BackendKind::Mmap);
        assert_eq!(MemoryBackend::new(1).kind(), BackendKind::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
