//! The data provider: page storage behind a selectable backend
//! (paper §III.A).
//!
//! "Data providers physically store in their local memory the pages
//! created by the WRITE operations." Pages are immutable once stored —
//! a WRITE always creates fresh pages under a fresh write id — so the
//! store needs no versioned cells, just a concurrent serving index plus
//! accounting for the provider manager's load balancing. *Where the
//! page bytes live* is the [`StorageBackend`]'s business: in-memory
//! buffers ([`BackendKind::Memory`], the paper's RAM providers) or an
//! append-only mapped page log ([`BackendKind::Mmap`]) that survives a
//! provider restart — see [`crate::backend`].
//!
//! Pages arrive and leave as [`PageBuf`]s: a `PUT_PAGE` hands the very
//! allocation the RPC frame lent out to the backend (which persists it
//! if it is persistent) and indexes whatever buffer the backend serves —
//! for the mmap backend a refcounted slice of the log mapping, metering
//! **zero** copies. A `GET_PAGE` serves a refcount bump of the indexed
//! buffer. Logical accounting is by bytes promised-to-retain — two keys
//! sharing one allocation still count twice — while the backend reports
//! its own *resident* footprint (heap vs mapped) so the manager's
//! capacity projections stay truthful even for an append-only log that
//! retains removed pages.
//!
//! Sharing cuts the other way on removal: a stored page may be a slice
//! pinning a larger write-segment allocation, which stays resident
//! until the *last* sibling slice is removed. Pages of one write are
//! almost always reclaimed together (GC names dead pages per write id),
//! so the transient gap between logical accounting and resident memory
//! is bounded by one write segment per partially-collected write.

use crate::backend::{
    BackendKind, CompactReport, LogOptions, MemoryBackend, MmapBackend, ResidentBytes,
    StorageBackend,
};
use blobseer_proto::messages::{method, GetPage, ProviderStats, PutPage, RemovePage};
use blobseer_proto::tree::PageKey;
use blobseer_proto::BlobError;
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_util::{PageBuf, ShardedMap};
use parking_lot::{Condvar, Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wake/shutdown protocol between the RPC threads and the maintenance
/// thread, under `Inner::maint_mx`.
struct MaintState {
    /// The online trigger fired since the thread last drained.
    wake: bool,
    /// The provider is dropping; the thread must exit.
    shutdown: bool,
    /// A maintenance thread exists (persistent backends only); without
    /// one, the trigger compacts inline like the pre-thread regime.
    has_thread: bool,
}

/// The provider's shared state: everything both the RPC threads and the
/// maintenance thread touch.
struct Inner {
    store: ShardedMap<PageKey, PageBuf>,
    bytes: AtomicU64,
    backend: Arc<dyn StorageBackend>,
    costs: ServiceCosts,
    /// Compaction gate: mutating ops (`put`, `remove`) hold the read
    /// side; compaction takes the write side only for the **install**
    /// (catch-up + swap + index re-point) — the log rewrite itself runs
    /// off-gate, so writers stall for the delta, not the full rewrite.
    /// Reads (`get`) are deliberately ungated — compaction is *online*:
    /// already-served buffers keep the old generation's mapping alive
    /// by refcount. Data-plane and uncontended, hence outside the
    /// lockmeter like the sharded page index itself.
    maint: RwLock<()>,
    /// Serializes whole prepare→install cycles (the salvage path on a
    /// full log races the maintenance thread).
    compact_lock: Mutex<()>,
    maint_mx: Mutex<MaintState>,
    maint_cv: Condvar,
    /// Compactions the maintenance thread completed (observability).
    bg_compactions: AtomicU64,
}

/// One data provider: a concurrent serving index over a storage
/// backend, plus — for persistent backends — a maintenance thread that
/// runs threshold-triggered log compactions off the RPC threads.
pub struct DataProviderService {
    inner: Arc<Inner>,
    maint_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DataProviderService {
    /// In-memory provider with `capacity` bytes of RAM (paper nodes:
    /// 4 GB).
    pub fn new(capacity: u64, costs: ServiceCosts) -> Self {
        Self::with_backend(Arc::new(MemoryBackend::new(capacity)), costs)
    }

    /// Provider over an explicit backend (empty index; persistent
    /// backends are replayed by [`DataProviderService::open_mmap`]).
    /// Backends with something to compact get a maintenance thread.
    pub fn with_backend(backend: Arc<dyn StorageBackend>, costs: ServiceCosts) -> Self {
        let has_thread = backend.kind() == BackendKind::Mmap;
        let inner = Arc::new(Inner {
            store: ShardedMap::with_shards(64),
            bytes: AtomicU64::new(0),
            backend,
            costs,
            maint: RwLock::new(()),
            compact_lock: Mutex::new(()),
            maint_mx: Mutex::new(MaintState {
                wake: false,
                shutdown: false,
                has_thread,
            }),
            maint_cv: Condvar::new(),
            bg_compactions: AtomicU64::new(0),
        });
        let maint_thread = has_thread.then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("provider-maint".into())
                .spawn(move || inner.maintenance_loop())
                // lint: allow(panic-on-serving-path) — service construction at startup
                .expect("spawn provider maintenance thread")
        });
        Self {
            inner,
            maint_thread: Mutex::new(maint_thread),
        }
    }

    /// [`DataProviderService::open_mmap_with`] with default
    /// [`LogOptions`].
    pub fn open_mmap(dir: &Path, capacity: u64, costs: ServiceCosts) -> Result<Self, BlobError> {
        Self::open_mmap_with(dir, capacity, LogOptions::default(), costs)
    }

    /// Persistent provider over the crash-consistent page log under
    /// `dir` with room for `capacity` log bytes per generation: opens
    /// the newest sealed generation, replays every **committed** record
    /// into the serving index, and resumes appending after the last
    /// commit marker. This is the provider restart path — a provider
    /// re-opened on the directory it died with re-serves every page it
    /// acknowledged, and loses at most the uncommitted tail.
    pub fn open_mmap_with(
        dir: &Path,
        capacity: u64,
        opts: LogOptions,
        costs: ServiceCosts,
    ) -> Result<Self, BlobError> {
        let backend = Arc::new(MmapBackend::open_with(dir, capacity, opts)?);
        let svc = Self::with_backend(backend.clone(), costs);
        for (key, page) in backend.recover()? {
            let len = page.len() as u64;
            if let Some(old) = svc.inner.store.insert(key, page) {
                // A re-put appended twice; the replay's later record
                // wins, exactly like the original acknowledgement order
                // — and the superseded record is dead log weight for
                // the next compaction.
                svc.inner
                    .bytes
                    .fetch_sub(old.len() as u64, Ordering::Relaxed);
                backend.on_remove(old.len() as u64);
            }
            svc.inner.bytes.fetch_add(len, Ordering::Relaxed);
        }
        Ok(svc)
    }

    /// Which backend kind this provider stores pages on.
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.backend.kind()
    }

    /// The backend's resident backing bytes (heap vs mapped).
    pub fn resident(&self) -> ResidentBytes {
        self.inner.backend.resident()
    }

    /// Pages currently stored.
    pub fn page_count(&self) -> usize {
        self.inner.store.len()
    }

    /// Logical bytes currently stored.
    pub fn bytes_used(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Usage snapshot: logical pages/bytes plus the backend-resident
    /// split the manager's capacity accounting runs on, and the dead
    /// log bytes a compaction would reclaim.
    pub fn stats(&self) -> ProviderStats {
        self.inner.stats()
    }

    /// Compact the backend: rewrite the live serving set into a fresh
    /// log generation and reclaim everything else (removed pages,
    /// superseded re-puts, old commit markers). Returns `None` when
    /// there is nothing to reclaim — the memory backend always (its
    /// removes free eagerly), or a log with zero dead bytes.
    ///
    /// Online twice over: concurrent reads keep serving — buffers
    /// handed out before the swap hold the old generation's mapping by
    /// refcount — and the log rewrite itself runs *outside* the
    /// maintenance gate; `put`/`remove` wait only for the install (the
    /// catch-up delta plus the swap).
    pub fn compact(&self) -> Result<Option<CompactReport>, BlobError> {
        self.inner.compact()
    }

    /// Compactions the maintenance thread has completed (the
    /// threshold-triggered background ones; explicit and salvage
    /// compactions are not counted).
    pub fn background_compactions(&self) -> u64 {
        self.inner.bg_compactions.load(Ordering::Relaxed)
    }

    /// Direct probe (tests/GC verification).
    pub fn contains(&self, key: &PageKey) -> bool {
        self.inner.store.contains_key(key)
    }

    /// Every stored key (white-box: recovery tests enumerate the index
    /// before a crash to compare against the replayed one).
    pub fn keys(&self) -> Vec<PageKey> {
        self.inner.store.keys()
    }

    /// Direct page lookup without RPC framing (white-box).
    pub fn page(&self, key: &PageKey) -> Option<PageBuf> {
        self.inner.store.get_cloned(key)
    }
}

impl Drop for DataProviderService {
    fn drop(&mut self) {
        if let Some(handle) = self.maint_thread.lock().take() {
            {
                let mut st = self.inner.maint_mx.lock();
                st.shutdown = true;
            }
            self.inner.maint_cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl Inner {
    fn stats(&self) -> ProviderStats {
        let resident = self.backend.resident();
        ProviderStats {
            pages: self.store.len() as u64,
            bytes: self.bytes.load(Ordering::Relaxed),
            heap_bytes: resident.heap,
            mapped_bytes: resident.mapped,
            dead_bytes: self.backend.dead_bytes(),
        }
    }

    /// The serving index, snapshotted entry by entry (no global lock —
    /// the caller decides what race window is acceptable).
    fn live_set(&self) -> Vec<(PageKey, PageBuf)> {
        self.store
            .keys()
            .into_iter()
            .filter_map(|k| self.store.get_cloned(&k).map(|p| (k, p)))
            .collect()
    }

    /// One full prepare→install compaction cycle. See
    /// [`DataProviderService::compact`] for the contract.
    fn compact(&self) -> Result<Option<CompactReport>, BlobError> {
        // One cycle at a time: the maintenance thread, explicit calls,
        // and the salvage path on a full log may all arrive here.
        let _one = self.compact_lock.lock();
        // A backend with no dead bytes — the memory backend always (it
        // frees eagerly), or a log a racing salvage just compacted —
        // has nothing to reclaim, and must not pay the O(pages)
        // live-set snapshot.
        if self.backend.dead_bytes() == 0 {
            return Ok(None);
        }
        // Phase 1, off-gate: puts and removes keep landing while the
        // backend rewrites this snapshot into a fresh generation.
        let snapshot = self.live_set();
        let Some(prepared) = self.backend.compact_prepare(&snapshot)? else {
            return Ok(None);
        };
        // Phase 2, under the gate: writers hold still while the backend
        // catches the new generation up with whatever moved during the
        // rewrite and swaps it in; then re-point the serving index.
        let _gate = self.maint.write();
        let current = self.live_set();
        match self.backend.compact_install(prepared, &current)? {
            None => Ok(None),
            Some(outcome) => {
                for (key, page) in outcome.entries {
                    self.store.insert(key, page);
                }
                Ok(Some(outcome.report))
            }
        }
    }

    /// The maintenance thread: sleep until the online trigger fires,
    /// then compact until the backend stops asking (a failed compaction
    /// backs its own trigger off, so this converges).
    fn maintenance_loop(&self) {
        let mut st = self.maint_mx.lock();
        loop {
            while !st.wake && !st.shutdown {
                self.maint_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            st.wake = false;
            drop(st);
            while self.backend.wants_compaction() {
                // Best effort: a failed compaction leaves the old
                // generation serving — correctness is unaffected — and
                // raised its own retry floor, so don't spin on it.
                if self.compact().is_err() {
                    break;
                }
                self.bg_compactions.fetch_add(1, Ordering::Relaxed);
            }
            st = self.maint_mx.lock();
        }
    }

    /// The online trigger, called after mutating ops: when dead bytes
    /// crossed the backend's threshold, wake the maintenance thread —
    /// the RPC thread returns immediately; only the install's gate can
    /// ever make a later put wait. Backends without a thread (memory:
    /// nothing to compact) fall back to compacting inline.
    fn maybe_compact(&self) {
        if !self.backend.wants_compaction() {
            return;
        }
        let signaled = {
            let mut st = self.maint_mx.lock();
            if st.has_thread {
                st.wake = true;
            }
            st.has_thread
        };
        if signaled {
            self.maint_cv.notify_one();
        } else {
            let _ = self.compact();
        }
    }

    fn put(&self, key: PageKey, data: PageBuf) -> Result<(), BlobError> {
        match self.try_put(key, data.clone()) {
            Ok(()) => {
                // Superseding re-puts create dead bytes too; with the
                // gate released, give the online compaction its
                // chance — a log that only ever sees re-puts must not
                // fill up with reclaimable records.
                self.maybe_compact();
                Ok(())
            }
            Err(e) => {
                // A full log with reclaimable dead bytes is not full:
                // compact regardless of the auto-trigger's threshold
                // and retry once, so a provider never serves "full"
                // errors indefinitely over space a compaction would
                // hand back. (Retry even when compact() found nothing —
                // a racing salvage may have already reclaimed it.)
                if self.backend.dead_bytes() > 0 {
                    let _ = self.compact();
                    return self.try_put(key, data);
                }
                Err(e)
            }
        }
    }

    /// One put attempt under the maintenance gate's read side.
    fn try_put(&self, key: PageKey, data: PageBuf) -> Result<(), BlobError> {
        let _gate = self.maint.read();
        let len = data.len() as u64;
        let replaced = self.store.with(&key, |old| old.len() as u64);
        // The backend enforces its own capacity — the `replaced` probe
        // is a check-time credit so an idempotent re-put never fails on
        // a full provider — and returns the buffer to serve: the input
        // itself for memory, a mapped log slice for mmap.
        let serve = self.backend.ingest(&key, &data, replaced)?;
        if let Some(old) = self.store.insert(key, serve) {
            // Idempotent re-put of the same immutable page (client
            // retry). The bytes actually freed are credited from the
            // insert's own return value, not the earlier probe, so
            // racing puts of one key cannot drift the accounting.
            self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
            self.backend.on_remove(old.len() as u64);
        }
        self.bytes.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &PageKey) -> Result<PageBuf, BlobError> {
        self.store
            .get_cloned(key)
            .ok_or(BlobError::MissingPage { tried: vec![] })
    }

    fn remove(&self, key: &PageKey) -> bool {
        let removed = {
            let _gate = self.maint.read();
            match self.store.remove(key) {
                Some(old) => {
                    self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
                    self.backend.on_remove(old.len() as u64);
                    true
                }
                None => false,
            }
        };
        if removed {
            // The gate is released: compaction takes the write side.
            self.maybe_compact();
        }
        removed
    }
}

impl Service for DataProviderService {
    fn name(&self) -> &'static str {
        "data-provider"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method {
            method::PUT_PAGE => {
                ctx.charge(self.inner.costs.page_store_ns);
                respond(frame, |m: PutPage| self.inner.put(m.key, m.data))
            }
            method::GET_PAGE => {
                ctx.charge(self.inner.costs.page_fetch_ns);
                respond(frame, |m: GetPage| self.inner.get(&m.key))
            }
            method::REMOVE_PAGE => {
                ctx.charge(self.inner.costs.page_fetch_ns);
                respond(frame, |m: RemovePage| Ok(self.inner.remove(&m.key)))
            }
            method::PROVIDER_STATS => {
                ctx.charge(self.inner.costs.manager_query_ns);
                respond(frame, |_: ()| Ok(self.inner.stats()))
            }
            other => error_frame(other, BlobError::Internal("unknown data-provider method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::{BlobId, WriteId};
    use blobseer_rpc::parse_response;

    fn key(w: u64, i: u64) -> PageKey {
        PageKey {
            blob: BlobId(1),
            write: WriteId(w),
            index: i,
        }
    }

    fn svc() -> DataProviderService {
        DataProviderService::new(1 << 20, ServiceCosts::zero())
    }

    #[test]
    fn put_get_remove_cycle() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let data = PageBuf::from_vec(vec![7u8; 4096]);
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: data.clone(),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.bytes_used(), 4096);

        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }),
        );
        assert_eq!(parse_response::<PageBuf>(&resp).unwrap(), data);

        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }),
        );
        assert!(parse_response::<bool>(&resp).unwrap());
        assert_eq!(p.bytes_used(), 0);
        // Second remove reports false.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }),
        );
        assert!(!parse_response::<bool>(&resp).unwrap());
    }

    #[test]
    fn missing_page_is_error() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(9, 9) }),
        );
        assert!(matches!(
            parse_response::<PageBuf>(&resp),
            Err(BlobError::MissingPage { .. })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let p = DataProviderService::new(8192, ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        for i in 0..2 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i),
                        data: PageBuf::from_vec(vec![0u8; 4096]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 2),
                    data: PageBuf::from_vec(vec![0u8; 4096]),
                },
            ),
        );
        assert!(parse_response::<()>(&resp).is_err(), "out of memory");

        // Idempotent re-put of an existing key on a full provider must
        // succeed: the replaced entry's bytes are credited before the
        // capacity check (client retry after a lost ack).
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: PageBuf::from_vec(vec![9u8; 4096]),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.bytes_used(), 8192, "full provider stays full, not over");
    }

    #[test]
    fn idempotent_re_put_does_not_leak_accounting() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        for _ in 0..3 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, 0),
                        data: PageBuf::from_vec(vec![1u8; 2048]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        assert_eq!(p.bytes_used(), 2048);
        assert_eq!(p.page_count(), 1);
    }

    #[test]
    fn accounting_correct_when_pages_share_one_allocation() {
        // Replica fan-out hands the same PageBuf to several providers (or,
        // via distinct keys, to one provider twice). Accounting must track
        // logical bytes per key, unaffected by allocation sharing.
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let shared = PageBuf::from_vec(vec![5u8; 4096]);
        for i in 0..3 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i),
                        data: shared.clone(),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        assert_eq!(p.page_count(), 3);
        assert_eq!(p.bytes_used(), 3 * 4096, "logical bytes, not allocations");

        // A get serves a refcount bump of the stored buffer, and the
        // accounting is untouched by reads.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }),
        );
        let got = parse_response::<PageBuf>(&resp).unwrap();
        assert!(
            got.same_allocation(&shared),
            "get must serve the shared allocation"
        );
        assert_eq!(p.bytes_used(), 3 * 4096);

        // Removing one key releases exactly its logical bytes; the other
        // keys (same allocation) are unaffected.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 1) }),
        );
        assert!(parse_response::<bool>(&resp).unwrap());
        assert_eq!(p.page_count(), 2);
        assert_eq!(p.bytes_used(), 2 * 4096);
        assert!(p.contains(&key(1, 0)) && p.contains(&key(1, 2)));

        // Re-putting an existing key with a sliced view of the same data
        // stays idempotent in accounting.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: shared.slice(0..4096),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.bytes_used(), 2 * 4096);
    }

    #[test]
    fn stats_message() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(2, 5),
                    data: PageBuf::from_vec(vec![1u8; 1024]),
                },
            ),
        );
        let resp = p.handle(&mut ctx, &Frame::from_msg(method::PROVIDER_STATS, &()));
        let stats = parse_response::<ProviderStats>(&resp).unwrap();
        assert_eq!(
            stats,
            ProviderStats {
                pages: 1,
                bytes: 1024,
                heap_bytes: 1024,
                mapped_bytes: 0,
                dead_bytes: 0
            }
        );
        assert_eq!(stats.reserved_bytes(), 1024);
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("blobseer-data-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn mmap_provider_serves_mapped_pages_with_zero_copies() {
        let dir = temp_dir("serve");
        let p = DataProviderService::open_mmap(&dir, 1 << 20, ServiceCosts::zero()).unwrap();
        assert_eq!(p.backend_kind(), crate::backend::BackendKind::Mmap);
        let mut ctx = ServerCtx::new(0);
        let data = PageBuf::from_vec((0..4096u32).map(|i| (i % 241) as u8).collect());

        let before = blobseer_util::copymeter::thread_snapshot();
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: data.clone(),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }),
        );
        let got = parse_response::<PageBuf>(&resp).unwrap();
        assert_eq!(
            before.bytes_since(),
            0,
            "mmap put+get must meter zero payload copies"
        );
        assert_eq!(got, data);
        #[cfg(unix)]
        assert!(got.is_mapped(), "served page is lent from the log mapping");

        // Stats: logical bytes vs mapped log bytes (headers included).
        let stats = p.stats();
        assert_eq!(stats.bytes, 4096);
        assert_eq!(stats.heap_bytes, 0);
        assert!(stats.mapped_bytes > 4096, "log bytes include the header");
        assert_eq!(stats.reserved_bytes(), stats.mapped_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_provider_restart_re_serves_acknowledged_pages() {
        let dir = temp_dir("restart");
        let mut ctx = ServerCtx::new(0);
        let pages: Vec<PageBuf> = (0..5u8)
            .map(|i| PageBuf::from_vec(vec![i.wrapping_mul(37); 2048]))
            .collect();
        {
            let p = DataProviderService::open_mmap(&dir, 1 << 20, ServiceCosts::zero()).unwrap();
            for (i, data) in pages.iter().enumerate() {
                let resp = p.handle(
                    &mut ctx,
                    &Frame::from_msg(
                        method::PUT_PAGE,
                        &PutPage {
                            key: key(1, i as u64),
                            data: data.clone(),
                        },
                    ),
                );
                parse_response::<()>(&resp).unwrap();
            }
            // Idempotent re-put before the crash: the replay keeps the
            // latest acknowledged contents.
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, 0),
                        data: pages[4].clone(),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        } // "crash": the process-local index is gone

        let p = DataProviderService::open_mmap(&dir, 1 << 20, ServiceCosts::zero()).unwrap();
        assert_eq!(p.page_count(), 5);
        assert_eq!(p.bytes_used(), 5 * 2048);
        for (i, data) in pages.iter().enumerate() {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::GET_PAGE,
                    &GetPage {
                        key: key(1, i as u64),
                    },
                ),
            );
            let got = parse_response::<PageBuf>(&resp).unwrap();
            let want = if i == 0 { &pages[4] } else { data };
            assert_eq!(&got, want, "page {i} byte-identical after restart");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reserved_bytes_never_double_counts_across_a_compaction_window() {
        // During compaction one page briefly exists in *two* generation
        // files on disk. `ProviderStats::reserved_bytes` must follow
        // the serving generation only — a concurrent observer hammering
        // stats through the whole window may never see the sum of both.
        let dir = temp_dir("window");
        let p =
            Arc::new(DataProviderService::open_mmap(&dir, 1 << 20, ServiceCosts::zero()).unwrap());
        let mut ctx = ServerCtx::new(0);
        for i in 0..16u64 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i),
                        data: PageBuf::from_vec(vec![i as u8; 2048]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        for i in 0..8u64 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, i) }),
            );
            assert!(parse_response::<bool>(&resp).unwrap());
        }
        let before = p.stats();
        assert!(before.dead_bytes > 0);
        let ceiling = before.reserved_bytes();

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let observer = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = p.stats();
                    assert!(
                        s.reserved_bytes() <= ceiling,
                        "double-counted generations: {} > pre-compaction {}",
                        s.reserved_bytes(),
                        ceiling
                    );
                    samples += 1;
                }
                samples
            })
        };
        let report = p.compact().unwrap().expect("mmap compacts");
        stop.store(true, Ordering::Relaxed);
        assert!(observer.join().unwrap() > 0, "observer sampled the window");

        let after = p.stats();
        assert_eq!(after.reserved_bytes(), report.new_log_bytes);
        assert!(after.reserved_bytes() < ceiling, "the log shrank");
        assert_eq!(after.dead_bytes, 0);
        assert_eq!(after.pages, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Wait for the maintenance thread to finish a triggered
    /// compaction: poll until `pred(stats)` holds (the thread runs
    /// asynchronously to the mutating op that woke it).
    fn wait_for_stats(p: &DataProviderService, pred: impl Fn(&ProviderStats) -> bool) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if pred(&p.stats()) {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "maintenance thread never compacted: {:?}",
                p.stats()
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn removals_past_threshold_trigger_online_compaction() {
        // The automatic trigger: once removes push dead bytes over the
        // configured threshold, the maintenance thread compacts — the
        // log shrinks, the survivors keep serving, and the generation
        // moved — without the removing RPC thread paying for it.
        let dir = temp_dir("auto");
        let opts = crate::backend::LogOptions {
            compact_min_dead_bytes: 1024,
            compact_dead_ratio: 0.3,
            ..Default::default()
        };
        let p =
            DataProviderService::open_mmap_with(&dir, 1 << 20, opts, ServiceCosts::zero()).unwrap();
        let mut ctx = ServerCtx::new(0);
        let pages: Vec<PageBuf> = (0..8u8).map(|i| PageBuf::from_vec(vec![i; 2048])).collect();
        for (i, data) in pages.iter().enumerate() {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i as u64),
                        data: data.clone(),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        let full = p.stats().mapped_bytes;
        for i in 0..6u64 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, i) }),
            );
            assert!(parse_response::<bool>(&resp).unwrap());
        }
        wait_for_stats(&p, |s| s.mapped_bytes < full && s.dead_bytes == 0);
        let stats = p.stats();
        assert_eq!(stats.pages, 2);
        assert!(
            p.background_compactions() >= 1,
            "the maintenance thread ran it, not the RPC path"
        );
        // Survivors still served byte-identical, from the new generation.
        for (i, want) in pages.iter().enumerate().skip(6) {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::GET_PAGE,
                    &GetPage {
                        key: key(1, i as u64),
                    },
                ),
            );
            let got = parse_response::<PageBuf>(&resp).unwrap();
            assert_eq!(&got, want);
            #[cfg(unix)]
            assert!(got.mapping_generation().unwrap_or(0) >= 1, "new generation");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn re_puts_alone_trigger_online_compaction() {
        // Superseding re-puts create dead bytes without any REMOVE
        // traffic; the online trigger must fire from the put path too,
        // or a retry-heavy workload fills the log with reclaimable
        // records.
        let dir = temp_dir("reput-auto");
        let opts = crate::backend::LogOptions {
            compact_min_dead_bytes: 1024,
            compact_dead_ratio: 0.3,
            ..Default::default()
        };
        let p =
            DataProviderService::open_mmap_with(&dir, 1 << 20, opts, ServiceCosts::zero()).unwrap();
        let mut ctx = ServerCtx::new(0);
        for round in 0..6u8 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, 0),
                        data: PageBuf::from_vec(vec![round; 2048]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        wait_for_stats(&p, |s| s.dead_bytes < 2048);
        assert_eq!(p.stats().pages, 1);
        assert!(p.background_compactions() >= 1);
        // The live entry survived the swap with the newest contents.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }),
        );
        let got = parse_response::<PageBuf>(&resp).unwrap();
        assert_eq!(got, PageBuf::from_vec(vec![5u8; 2048]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_compaction_preserves_concurrent_writes() {
        // The point of the two-phase protocol: writers keep landing
        // while the maintenance thread rewrites the log underneath
        // them, and nothing they wrote is lost — in the serving index
        // or across a restart.
        let dir = temp_dir("bg-concurrent");
        let opts = crate::backend::LogOptions {
            compact_min_dead_bytes: 1024,
            compact_dead_ratio: 0.1,
            ..Default::default()
        };
        let p = Arc::new(
            DataProviderService::open_mmap_with(&dir, 1 << 22, opts, ServiceCosts::zero()).unwrap(),
        );
        // Four writers on disjoint key spaces: re-puts and removes
        // generate dead bytes continuously, so the trigger fires many
        // times mid-traffic.
        let expected: Vec<Vec<(PageKey, Option<Vec<u8>>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        let mut ctx = ServerCtx::new(0);
                        let mut last: Vec<(PageKey, Option<Vec<u8>>)> =
                            (0..8).map(|i| (key(t + 1, i), None)).collect();
                        for round in 0..120u64 {
                            let i = (round % 8) as usize;
                            let k = last[i].0;
                            if round % 16 == 9 {
                                let resp = p.handle(
                                    &mut ctx,
                                    &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: k }),
                                );
                                parse_response::<bool>(&resp).unwrap();
                                last[i].1 = None;
                            } else {
                                let val =
                                    vec![(t as u8) ^ (round as u8); 512 + (round as usize % 512)];
                                let resp = p.handle(
                                    &mut ctx,
                                    &Frame::from_msg(
                                        method::PUT_PAGE,
                                        &PutPage {
                                            key: k,
                                            data: PageBuf::from_vec(val.clone()),
                                        },
                                    ),
                                );
                                parse_response::<()>(&resp).unwrap();
                                last[i].1 = Some(val);
                            }
                        }
                        last
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The trigger must have fired (the drain may still be running
        // just after the writers stop — give it its deadline).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while p.background_compactions() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "the maintenance thread never compacted under traffic"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Every key serves exactly what its writer last did to it.
        let check = |p: &DataProviderService| {
            for per_thread in &expected {
                for (k, want) in per_thread {
                    match want {
                        Some(v) => assert_eq!(
                            p.page(k).as_ref().map(|b| b.as_slice()),
                            Some(v.as_slice()),
                            "key {k:?} lost or corrupted by background compaction"
                        ),
                        None => assert!(!p.contains(k), "removed key {k:?} resurrected"),
                    }
                }
            }
        };
        check(&p);
        // And the same after a restart — live pages byte-identical
        // (removed keys may legitimately resurrect if their removal
        // post-dates the last compaction, so only presence of live
        // content is checked here).
        drop(Arc::try_unwrap(p).ok().expect("sole owner"));
        let p2 =
            DataProviderService::open_mmap_with(&dir, 1 << 22, opts, ServiceCosts::zero()).unwrap();
        for per_thread in &expected {
            for (k, want) in per_thread {
                if let Some(v) = want {
                    assert_eq!(
                        p2.page(k).as_ref().map(|b| b.as_slice()),
                        Some(v.as_slice()),
                        "key {k:?} not recovered after restart"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_log_with_dead_bytes_compacts_and_accepts_the_put() {
        // A log can fill while dead bytes sit below the auto-trigger
        // threshold. The put path must treat "full but reclaimable" as
        // compact-then-retry, never as a permanent "provider full".
        let dir = temp_dir("salvage");
        // Room for exactly four 512-byte records, each with its marker;
        // thresholds high enough that the auto-trigger never fires.
        let opts = crate::backend::LogOptions::default();
        let capacity = 4 * (48 + 512 + 48);
        let p = DataProviderService::open_mmap_with(&dir, capacity, opts, ServiceCosts::zero())
            .unwrap();
        let mut ctx = ServerCtx::new(0);
        let put = |i: u64, ctx: &mut ServerCtx| {
            let resp = p.handle(
                ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i),
                        data: PageBuf::from_vec(vec![i as u8; 512]),
                    },
                ),
            );
            parse_response::<()>(&resp)
        };
        for i in 0..4 {
            put(i, &mut ctx).unwrap();
        }
        for i in 0..2u64 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, i) }),
            );
            assert!(parse_response::<bool>(&resp).unwrap());
        }
        assert!(p.stats().dead_bytes > 0, "reclaimable space exists");
        // The log is full, but not really: the put compacts and lands.
        put(9, &mut ctx).expect("full-but-reclaimable log accepts the put");
        assert_eq!(p.stats().pages, 3);
        assert_eq!(p.stats().dead_bytes, 0, "the salvage compaction ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn superseding_re_put_counts_the_old_record_dead() {
        let dir = temp_dir("supersede");
        let p = DataProviderService::open_mmap(&dir, 1 << 20, ServiceCosts::zero()).unwrap();
        let mut ctx = ServerCtx::new(0);
        for _ in 0..2 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, 0),
                        data: PageBuf::from_vec(vec![5u8; 4096]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.pages, 1);
        assert_eq!(stats.bytes, 4096, "logical bytes count the live entry once");
        assert!(
            stats.dead_bytes >= 4096,
            "the superseded record is dead log weight: {}",
            stats.dead_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_provider_remove_drops_index_but_not_log() {
        let dir = temp_dir("remove");
        let p = DataProviderService::open_mmap(&dir, 1 << 20, ServiceCosts::zero()).unwrap();
        let mut ctx = ServerCtx::new(0);
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: PageBuf::from_vec(vec![3u8; 1024]),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        let mapped = p.stats().mapped_bytes;
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }),
        );
        assert!(parse_response::<bool>(&resp).unwrap());
        assert_eq!(p.bytes_used(), 0, "logical bytes freed");
        assert_eq!(
            p.stats().mapped_bytes,
            mapped,
            "append-only log retains the record until compaction"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
