//! The data provider: RAM-based page storage (paper §III.A).
//!
//! "Data providers physically store in their local memory the pages
//! created by the WRITE operations." Pages are immutable once stored —
//! a WRITE always creates fresh pages under a fresh write id — so the
//! store needs no versioned cells, just a concurrent map plus memory
//! accounting for the provider manager's load balancing.

use blobseer_proto::messages::{method, GetPage, ProviderStats, PutPage, RemovePage};
use blobseer_proto::tree::PageKey;
use blobseer_proto::BlobError;
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_util::ShardedMap;
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};

/// One data provider's in-memory page store.
pub struct DataProviderService {
    store: ShardedMap<PageKey, Bytes>,
    bytes: AtomicU64,
    capacity: u64,
    costs: ServiceCosts,
}

impl DataProviderService {
    /// Provider with `capacity` bytes of RAM (paper nodes: 4 GB).
    pub fn new(capacity: u64, costs: ServiceCosts) -> Self {
        Self {
            store: ShardedMap::with_shards(64),
            bytes: AtomicU64::new(0),
            capacity,
            costs,
        }
    }

    /// Pages currently stored.
    pub fn page_count(&self) -> usize {
        self.store.len()
    }

    /// Bytes currently stored.
    pub fn bytes_used(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Usage snapshot.
    pub fn stats(&self) -> ProviderStats {
        ProviderStats { pages: self.store.len() as u64, bytes: self.bytes_used() }
    }

    /// Direct probe (tests/GC verification).
    pub fn contains(&self, key: &PageKey) -> bool {
        self.store.contains_key(key)
    }

    fn put(&self, key: PageKey, data: Bytes) -> Result<(), BlobError> {
        let len = data.len() as u64;
        if self.bytes_used() + len > self.capacity {
            return Err(BlobError::Internal("provider out of memory"));
        }
        if let Some(old) = self.store.insert(key, data) {
            // Idempotent re-put of the same immutable page (client retry).
            self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
        self.bytes.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &PageKey) -> Result<Bytes, BlobError> {
        self.store
            .get_cloned(key)
            .ok_or(BlobError::MissingPage { tried: vec![] })
    }

    fn remove(&self, key: &PageKey) -> bool {
        match self.store.remove(key) {
            Some(old) => {
                self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

impl Service for DataProviderService {
    fn name(&self) -> &'static str {
        "data-provider"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method {
            method::PUT_PAGE => {
                ctx.charge(self.costs.page_store_ns);
                respond(frame, |m: PutPage| self.put(m.key, m.data))
            }
            method::GET_PAGE => {
                ctx.charge(self.costs.page_fetch_ns);
                respond(frame, |m: GetPage| self.get(&m.key))
            }
            method::REMOVE_PAGE => {
                ctx.charge(self.costs.page_fetch_ns);
                respond(frame, |m: RemovePage| Ok(self.remove(&m.key)))
            }
            method::PROVIDER_STATS => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |_: ()| Ok(self.stats()))
            }
            other => error_frame(other, BlobError::Internal("unknown data-provider method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::{BlobId, WriteId};
    use blobseer_rpc::parse_response;

    fn key(w: u64, i: u64) -> PageKey {
        PageKey { blob: BlobId(1), write: WriteId(w), index: i }
    }

    fn svc() -> DataProviderService {
        DataProviderService::new(1 << 20, ServiceCosts::zero())
    }

    #[test]
    fn put_get_remove_cycle() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let data = Bytes::from(vec![7u8; 4096]);
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::PUT_PAGE, &PutPage { key: key(1, 0), data: data.clone() }),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.bytes_used(), 4096);

        let resp =
            p.handle(&mut ctx, &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }));
        assert_eq!(parse_response::<Bytes>(&resp).unwrap(), data);

        let resp = p
            .handle(&mut ctx, &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }));
        assert!(parse_response::<bool>(&resp).unwrap());
        assert_eq!(p.bytes_used(), 0);
        // Second remove reports false.
        let resp = p
            .handle(&mut ctx, &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }));
        assert!(!parse_response::<bool>(&resp).unwrap());
    }

    #[test]
    fn missing_page_is_error() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let resp =
            p.handle(&mut ctx, &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(9, 9) }));
        assert!(matches!(
            parse_response::<Bytes>(&resp),
            Err(BlobError::MissingPage { .. })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let p = DataProviderService::new(8192, ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        for i in 0..2 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage { key: key(1, i), data: Bytes::from(vec![0u8; 4096]) },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage { key: key(1, 2), data: Bytes::from(vec![0u8; 4096]) },
            ),
        );
        assert!(parse_response::<()>(&resp).is_err(), "out of memory");
    }

    #[test]
    fn idempotent_re_put_does_not_leak_accounting() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        for _ in 0..3 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage { key: key(1, 0), data: Bytes::from(vec![1u8; 2048]) },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        assert_eq!(p.bytes_used(), 2048);
        assert_eq!(p.page_count(), 1);
    }

    #[test]
    fn stats_message() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage { key: key(2, 5), data: Bytes::from(vec![1u8; 1024]) },
            ),
        );
        let resp = p.handle(&mut ctx, &Frame::from_msg(method::PROVIDER_STATS, &()));
        let stats = parse_response::<ProviderStats>(&resp).unwrap();
        assert_eq!(stats, ProviderStats { pages: 1, bytes: 1024 });
    }
}
