//! The data provider: RAM-based page storage (paper §III.A).
//!
//! "Data providers physically store in their local memory the pages
//! created by the WRITE operations." Pages are immutable once stored —
//! a WRITE always creates fresh pages under a fresh write id — so the
//! store needs no versioned cells, just a concurrent map plus memory
//! accounting for the provider manager's load balancing.
//!
//! Pages arrive and leave as [`PageBuf`]s: a `PUT_PAGE` stores the very
//! allocation the RPC frame lent out (no receive-side copy), and a
//! `GET_PAGE` serves a refcount bump of the stored buffer. Accounting is
//! by *logical* bytes stored — two keys sharing one allocation still
//! count twice, since capacity planning is about what the provider has
//! promised to retain, not the allocator's luck.
//!
//! Sharing cuts the other way on removal: a stored page may be a slice
//! pinning a larger write-segment allocation, which stays resident
//! until the *last* sibling slice is removed. Pages of one write are
//! almost always reclaimed together (GC names dead pages per write id),
//! so the transient gap between logical accounting and resident memory
//! is bounded by one write segment per partially-collected write.

use blobseer_proto::messages::{method, GetPage, ProviderStats, PutPage, RemovePage};
use blobseer_proto::tree::PageKey;
use blobseer_proto::BlobError;
use blobseer_rpc::{error_frame, respond, Frame, ServerCtx, Service};
use blobseer_simnet::ServiceCosts;
use blobseer_util::{PageBuf, ShardedMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// One data provider's in-memory page store.
pub struct DataProviderService {
    store: ShardedMap<PageKey, PageBuf>,
    bytes: AtomicU64,
    capacity: u64,
    costs: ServiceCosts,
}

impl DataProviderService {
    /// Provider with `capacity` bytes of RAM (paper nodes: 4 GB).
    pub fn new(capacity: u64, costs: ServiceCosts) -> Self {
        Self {
            store: ShardedMap::with_shards(64),
            bytes: AtomicU64::new(0),
            capacity,
            costs,
        }
    }

    /// Pages currently stored.
    pub fn page_count(&self) -> usize {
        self.store.len()
    }

    /// Bytes currently stored.
    pub fn bytes_used(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Usage snapshot.
    pub fn stats(&self) -> ProviderStats {
        ProviderStats {
            pages: self.store.len() as u64,
            bytes: self.bytes_used(),
        }
    }

    /// Direct probe (tests/GC verification).
    pub fn contains(&self, key: &PageKey) -> bool {
        self.store.contains_key(key)
    }

    fn put(&self, key: PageKey, data: PageBuf) -> Result<(), BlobError> {
        let len = data.len() as u64;
        // Credit the bytes a replaced entry would release before the
        // capacity check, so an idempotent re-put (client retry after a
        // lost ack) never fails on a full-but-consistent provider.
        let replaced = self.store.with(&key, |old| old.len() as u64).unwrap_or(0);
        if self.bytes_used().saturating_sub(replaced) + len > self.capacity {
            return Err(BlobError::Internal("provider out of memory"));
        }
        if let Some(old) = self.store.insert(key, data) {
            // Idempotent re-put of the same immutable page (client retry).
            self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
        self.bytes.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: &PageKey) -> Result<PageBuf, BlobError> {
        self.store
            .get_cloned(key)
            .ok_or(BlobError::MissingPage { tried: vec![] })
    }

    fn remove(&self, key: &PageKey) -> bool {
        match self.store.remove(key) {
            Some(old) => {
                self.bytes.fetch_sub(old.len() as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

impl Service for DataProviderService {
    fn name(&self) -> &'static str {
        "data-provider"
    }

    fn handle(&self, ctx: &mut ServerCtx, frame: &Frame) -> Frame {
        match frame.method {
            method::PUT_PAGE => {
                ctx.charge(self.costs.page_store_ns);
                respond(frame, |m: PutPage| self.put(m.key, m.data))
            }
            method::GET_PAGE => {
                ctx.charge(self.costs.page_fetch_ns);
                respond(frame, |m: GetPage| self.get(&m.key))
            }
            method::REMOVE_PAGE => {
                ctx.charge(self.costs.page_fetch_ns);
                respond(frame, |m: RemovePage| Ok(self.remove(&m.key)))
            }
            method::PROVIDER_STATS => {
                ctx.charge(self.costs.manager_query_ns);
                respond(frame, |_: ()| Ok(self.stats()))
            }
            other => error_frame(other, BlobError::Internal("unknown data-provider method")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_proto::{BlobId, WriteId};
    use blobseer_rpc::parse_response;

    fn key(w: u64, i: u64) -> PageKey {
        PageKey {
            blob: BlobId(1),
            write: WriteId(w),
            index: i,
        }
    }

    fn svc() -> DataProviderService {
        DataProviderService::new(1 << 20, ServiceCosts::zero())
    }

    #[test]
    fn put_get_remove_cycle() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let data = PageBuf::from_vec(vec![7u8; 4096]);
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: data.clone(),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.bytes_used(), 4096);

        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }),
        );
        assert_eq!(parse_response::<PageBuf>(&resp).unwrap(), data);

        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }),
        );
        assert!(parse_response::<bool>(&resp).unwrap());
        assert_eq!(p.bytes_used(), 0);
        // Second remove reports false.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 0) }),
        );
        assert!(!parse_response::<bool>(&resp).unwrap());
    }

    #[test]
    fn missing_page_is_error() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(9, 9) }),
        );
        assert!(matches!(
            parse_response::<PageBuf>(&resp),
            Err(BlobError::MissingPage { .. })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let p = DataProviderService::new(8192, ServiceCosts::zero());
        let mut ctx = ServerCtx::new(0);
        for i in 0..2 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i),
                        data: PageBuf::from_vec(vec![0u8; 4096]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 2),
                    data: PageBuf::from_vec(vec![0u8; 4096]),
                },
            ),
        );
        assert!(parse_response::<()>(&resp).is_err(), "out of memory");

        // Idempotent re-put of an existing key on a full provider must
        // succeed: the replaced entry's bytes are credited before the
        // capacity check (client retry after a lost ack).
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: PageBuf::from_vec(vec![9u8; 4096]),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.bytes_used(), 8192, "full provider stays full, not over");
    }

    #[test]
    fn idempotent_re_put_does_not_leak_accounting() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        for _ in 0..3 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, 0),
                        data: PageBuf::from_vec(vec![1u8; 2048]),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        assert_eq!(p.bytes_used(), 2048);
        assert_eq!(p.page_count(), 1);
    }

    #[test]
    fn accounting_correct_when_pages_share_one_allocation() {
        // Replica fan-out hands the same PageBuf to several providers (or,
        // via distinct keys, to one provider twice). Accounting must track
        // logical bytes per key, unaffected by allocation sharing.
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        let shared = PageBuf::from_vec(vec![5u8; 4096]);
        for i in 0..3 {
            let resp = p.handle(
                &mut ctx,
                &Frame::from_msg(
                    method::PUT_PAGE,
                    &PutPage {
                        key: key(1, i),
                        data: shared.clone(),
                    },
                ),
            );
            parse_response::<()>(&resp).unwrap();
        }
        assert_eq!(p.page_count(), 3);
        assert_eq!(p.bytes_used(), 3 * 4096, "logical bytes, not allocations");

        // A get serves a refcount bump of the stored buffer, and the
        // accounting is untouched by reads.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::GET_PAGE, &GetPage { key: key(1, 0) }),
        );
        let got = parse_response::<PageBuf>(&resp).unwrap();
        assert!(
            got.same_allocation(&shared),
            "get must serve the shared allocation"
        );
        assert_eq!(p.bytes_used(), 3 * 4096);

        // Removing one key releases exactly its logical bytes; the other
        // keys (same allocation) are unaffected.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(method::REMOVE_PAGE, &RemovePage { key: key(1, 1) }),
        );
        assert!(parse_response::<bool>(&resp).unwrap());
        assert_eq!(p.page_count(), 2);
        assert_eq!(p.bytes_used(), 2 * 4096);
        assert!(p.contains(&key(1, 0)) && p.contains(&key(1, 2)));

        // Re-putting an existing key with a sliced view of the same data
        // stays idempotent in accounting.
        let resp = p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(1, 0),
                    data: shared.slice(0..4096),
                },
            ),
        );
        parse_response::<()>(&resp).unwrap();
        assert_eq!(p.bytes_used(), 2 * 4096);
    }

    #[test]
    fn stats_message() {
        let p = svc();
        let mut ctx = ServerCtx::new(0);
        p.handle(
            &mut ctx,
            &Frame::from_msg(
                method::PUT_PAGE,
                &PutPage {
                    key: key(2, 5),
                    data: PageBuf::from_vec(vec![1u8; 1024]),
                },
            ),
        );
        let resp = p.handle(&mut ctx, &Frame::from_msg(method::PROVIDER_STATS, &()));
        let stats = parse_response::<ProviderStats>(&resp).unwrap();
        assert_eq!(
            stats,
            ProviderStats {
                pages: 1,
                bytes: 1024
            }
        );
    }
}
