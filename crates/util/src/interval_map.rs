//! A map from disjoint half-open `u64` intervals to values.
//!
//! This is the workhorse behind the version manager's *version index*:
//! for every byte of a blob it records the latest version that wrote it.
//! The two operations the BlobSeer protocol needs are:
//!
//! * [`IntervalMap::assign`] — range assignment (a new write stamps its
//!   segment with its version number). Values assigned over time are
//!   monotonically increasing, but the map does not require that.
//! * [`IntervalMap::range_max`] — the largest value intersecting a query
//!   interval. This answers the *missing-child link rule*: the border node
//!   child covering interval `I` links to `max{w < v : seg_w ∩ I ≠ ∅}`.
//!
//! The representation is a `BTreeMap<u64, Run>` keyed by interval start,
//! holding maximal disjoint runs. All operations are `O(log n + k)` where
//! `k` is the number of runs touched.

use std::collections::BTreeMap;
use std::fmt;

/// One stored run `[start, end) -> value`; `start` is the BTreeMap key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Run<V> {
    end: u64,
    value: V,
}

/// A map from disjoint half-open `u64` intervals to values.
///
/// Unassigned space behaves as "absent" (queries return `None` over it).
#[derive(Clone, Default)]
pub struct IntervalMap<V> {
    runs: BTreeMap<u64, Run<V>>,
}

impl<V: fmt::Debug> fmt::Debug for IntervalMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for (s, r) in &self.runs {
            d.entry(&(s..&r.end), &r.value);
        }
        d.finish()
    }
}

impl<V: Copy + PartialEq> IntervalMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            runs: BTreeMap::new(),
        }
    }

    /// Number of stored runs (adjacent equal-valued runs are coalesced).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// True if nothing has ever been assigned.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of bytes covered by assigned runs.
    pub fn covered(&self) -> u64 {
        self.runs
            .values()
            .zip(self.runs.keys())
            .fold(0, |acc, (r, s)| acc + (r.end - s))
    }

    /// Assign `value` over `[start, end)`, overwriting anything underneath.
    ///
    /// No-op when `start >= end`.
    pub fn assign(&mut self, start: u64, end: u64, value: V) {
        if start >= end {
            return;
        }
        // Split any run straddling `start`.
        if let Some((&s, &r)) = self.runs.range(..=start).next_back() {
            if r.end > start {
                // left piece [s, start)
                self.runs.insert(
                    s,
                    Run {
                        end: start,
                        value: r.value,
                    },
                );
                if s == start {
                    self.runs.remove(&s);
                }
                // right remainder [start, r.end) — reinsert, will be
                // truncated/removed by the sweep below.
                self.runs.insert(
                    start,
                    Run {
                        end: r.end,
                        value: r.value,
                    },
                );
            }
        }
        // Remove or truncate every run beginning inside [start, end).
        let overlapping: Vec<u64> = self.runs.range(start..end).map(|(&s, _)| s).collect();
        for s in overlapping {
            // lint: allow(panic-on-serving-path) — `s` was just collected from a
            // range over this same map; the key is present
            let r = self.runs.remove(&s).unwrap();
            if r.end > end {
                // keep the tail piece [end, r.end)
                self.runs.insert(
                    end,
                    Run {
                        end: r.end,
                        value: r.value,
                    },
                );
            }
        }
        self.runs.insert(start, Run { end, value });
        self.coalesce_around(start, end);
    }

    /// Merge the run starting at `start` with equal-valued neighbours.
    fn coalesce_around(&mut self, start: u64, end: u64) {
        // Merge with successor.
        // lint: allow(panic-on-serving-path) — the caller inserted `start` one call ago
        let cur = *self.runs.get(&start).expect("run just inserted");
        if let Some((&ns, &nr)) = self.runs.range(end..).next() {
            if ns == end && nr.value == cur.value {
                self.runs.remove(&ns);
                self.runs.insert(
                    start,
                    Run {
                        end: nr.end,
                        value: cur.value,
                    },
                );
            }
        }
        // Merge with predecessor.
        // lint: allow(panic-on-serving-path) — successor merge re-inserts at
        // `start`; the run is still present
        let cur = *self.runs.get(&start).expect("run present");
        if let Some((&ps, &pr)) = self.runs.range(..start).next_back() {
            if pr.end == start && pr.value == cur.value {
                self.runs.remove(&start);
                self.runs.insert(
                    ps,
                    Run {
                        end: cur.end,
                        value: cur.value,
                    },
                );
            }
        }
    }

    /// The value at a single point, if assigned.
    pub fn get(&self, point: u64) -> Option<V> {
        let (_, r) = self.runs.range(..=point).next_back()?;
        (r.end > point).then_some(r.value)
    }

    /// Iterate `(start, end, value)` runs intersecting `[start, end)`,
    /// clipped to the query window.
    pub fn overlaps(&self, start: u64, end: u64) -> impl Iterator<Item = (u64, u64, V)> + '_ {
        // A run straddling the window begins strictly before `start`; runs
        // beginning at `start` itself are yielded by `rest`.
        let first = self
            .runs
            .range(..start)
            .next_back()
            .filter(|(_, r)| r.end > start)
            .map(|(&s, &r)| (s, r));
        let rest = self.runs.range(start..end).map(|(&s, &r)| (s, r));
        first
            .into_iter()
            .chain(rest)
            .filter(move |&(s, _)| s < end)
            .map(move |(s, r)| (s.max(start), r.end.min(end), r.value))
            .filter(|(s, e, _)| s < e)
    }

    /// Iterate all `(start, end, value)` runs in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, V)> + '_ {
        self.runs.iter().map(|(&s, &r)| (s, r.end, r.value))
    }
}

impl<V: Copy + Ord> IntervalMap<V> {
    /// The maximum value intersecting `[start, end)`, if any byte of the
    /// query window is assigned.
    pub fn range_max(&self, start: u64, end: u64) -> Option<V> {
        self.overlaps(start, end).map(|(_, _, v)| v).max()
    }

    /// True if every byte of `[start, end)` is assigned a value `>= floor`.
    ///
    /// Used by GC safety checks ("is this whole interval superseded?").
    pub fn covers_at_least(&self, start: u64, end: u64, floor: V) -> bool {
        if start >= end {
            return true;
        }
        let mut cursor = start;
        for (s, e, v) in self.overlaps(start, end) {
            if s > cursor {
                return false; // gap
            }
            if v < floor {
                return false;
            }
            cursor = e;
            if cursor >= end {
                return true;
            }
        }
        cursor >= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(m: &IntervalMap<u64>) -> Vec<(u64, u64, u64)> {
        m.iter().collect()
    }

    #[test]
    fn empty_map_queries() {
        let m: IntervalMap<u64> = IntervalMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        assert_eq!(m.range_max(0, 100), None);
        assert_eq!(m.overlaps(0, 100).count(), 0);
    }

    #[test]
    fn single_assign_and_point_queries() {
        let mut m = IntervalMap::new();
        m.assign(10, 20, 7u64);
        assert_eq!(m.get(9), None);
        assert_eq!(m.get(10), Some(7));
        assert_eq!(m.get(19), Some(7));
        assert_eq!(m.get(20), None);
        assert_eq!(m.covered(), 10);
    }

    #[test]
    fn zero_length_assign_is_noop() {
        let mut m = IntervalMap::new();
        m.assign(5, 5, 1u64);
        m.assign(7, 3, 2u64);
        assert!(m.is_empty());
    }

    #[test]
    fn overwrite_middle_splits_run() {
        let mut m = IntervalMap::new();
        m.assign(0, 100, 1u64);
        m.assign(40, 60, 2u64);
        assert_eq!(runs(&m), vec![(0, 40, 1), (40, 60, 2), (60, 100, 1)]);
        assert_eq!(m.range_max(0, 100), Some(2));
        assert_eq!(m.range_max(0, 40), Some(1));
        assert_eq!(m.range_max(60, 100), Some(1));
    }

    #[test]
    fn overwrite_prefix_and_suffix() {
        let mut m = IntervalMap::new();
        m.assign(10, 30, 1u64);
        m.assign(0, 15, 2u64);
        assert_eq!(runs(&m), vec![(0, 15, 2), (15, 30, 1)]);
        m.assign(25, 40, 3u64);
        assert_eq!(runs(&m), vec![(0, 15, 2), (15, 25, 1), (25, 40, 3)]);
    }

    #[test]
    fn exact_overwrite_replaces() {
        let mut m = IntervalMap::new();
        m.assign(5, 10, 1u64);
        m.assign(5, 10, 9u64);
        assert_eq!(runs(&m), vec![(5, 10, 9)]);
    }

    #[test]
    fn coalesce_adjacent_equal_values() {
        let mut m = IntervalMap::new();
        m.assign(0, 10, 4u64);
        m.assign(10, 20, 4u64);
        assert_eq!(runs(&m), vec![(0, 20, 4)]);
        m.assign(20, 30, 5u64);
        m.assign(30, 40, 5u64);
        assert_eq!(m.run_count(), 2);
    }

    #[test]
    fn overlaps_clips_to_window() {
        let mut m = IntervalMap::new();
        m.assign(0, 100, 1u64);
        let v: Vec<_> = m.overlaps(30, 50).collect();
        assert_eq!(v, vec![(30, 50, 1)]);
    }

    #[test]
    fn range_max_sees_straddling_run() {
        let mut m = IntervalMap::new();
        m.assign(0, 1000, 3u64);
        m.assign(100, 200, 9u64);
        // Query window begins inside the straddling low-valued run.
        assert_eq!(m.range_max(50, 150), Some(9));
        assert_eq!(m.range_max(250, 300), Some(3));
        // Empty query.
        assert_eq!(m.range_max(80, 80), None);
    }

    #[test]
    fn covers_at_least_detects_gaps_and_low_values() {
        let mut m = IntervalMap::new();
        m.assign(0, 10, 5u64);
        m.assign(20, 30, 5u64);
        assert!(!m.covers_at_least(0, 30, 5)); // gap [10,20)
        m.assign(10, 20, 4u64);
        assert!(!m.covers_at_least(0, 30, 5)); // low value in the middle
        m.assign(10, 20, 6u64);
        assert!(m.covers_at_least(0, 30, 5));
        assert!(m.covers_at_least(7, 7, 99)); // empty interval trivially true
    }

    #[test]
    fn version_index_scenario() {
        // Reproduce the paper's Figure 2(b) weaving scenario on a 4-page
        // blob: v1 writes [0,4), v2 writes [1,2), v3 writes [2,3).
        let mut m = IntervalMap::new();
        m.assign(0, 4, 1u64);
        m.assign(1, 2, 2u64);
        m.assign(2, 3, 3u64);
        // v3's border node at [0,2) needs a link for its missing left half
        // [0,1): latest intersecting writer is v1... and for [1,2): v2.
        assert_eq!(m.range_max(0, 1), Some(1));
        assert_eq!(m.range_max(1, 2), Some(2));
        // v3's root [0,4) right half [2,4): the max writer *before* v3 was
        // v1 — reconstruct by assigning in order and querying before the
        // final assign in a fresh map.
        let mut before_v3 = IntervalMap::new();
        before_v3.assign(0, 4, 1u64);
        before_v3.assign(1, 2, 2u64);
        assert_eq!(before_v3.range_max(2, 4), Some(1));
        assert_eq!(before_v3.range_max(3, 4), Some(1));
    }

    #[test]
    fn many_small_disjoint_runs() {
        let mut m = IntervalMap::new();
        for i in 0..100u64 {
            m.assign(i * 10, i * 10 + 5, i);
        }
        assert_eq!(m.run_count(), 100);
        assert_eq!(m.covered(), 500);
        assert_eq!(m.range_max(0, 1000), Some(99));
        assert_eq!(m.get(57), None);
        assert_eq!(m.get(52), Some(5));
    }
}
