//! [`PageBuf`] — a cheap-clone immutable byte buffer, the unit of
//! zero-copy data movement across the workspace.
//!
//! The paper's pages are **immutable once written** (a WRITE always
//! creates fresh pages under a fresh write id), which makes
//! reference-counted sharing sound: a page entering the system is copied
//! into a `PageBuf` at most once, and every subsequent hand-off — replica
//! fan-out, RPC framing, batch aggregation, provider storage, read
//! responses — is a refcount bump plus an offset/length pair.
//!
//! `slice` is O(1): sub-buffers share the backing allocation. That is how
//! a client splits one write buffer into per-page send buffers without
//! copying, and how the wire codec lends out message payloads borrowed
//! from a received frame.
//!
//! Every *deliberate* copy of payload bytes into or out of a `PageBuf`
//! is accounted in [`copymeter`], so benchmarks can
//! report bytes-copied-per-operation instead of asserting zero-copy-ness.

use crate::copymeter;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// The storage behind a [`PageBuf`]: a heap allocation or a mapped file
/// region. Both are immutable for the lifetime of the backing, which is
/// what makes refcounted sharing of either sound.
enum Backing {
    /// An owned heap allocation (the original PR 1 variant).
    Heap(Vec<u8>),
    /// A read-only memory-mapped file region, tagged with the log
    /// **generation** it maps (compaction swaps generations; the tag
    /// lets white-box tests tell a pre-swap slice from a post-swap
    /// one). Serving bytes out of it is a page-cache borrow — no heap
    /// copy ever happens, which is how a persistent provider lends
    /// pages straight out of its page log.
    Mapped { map: memmap2::Mmap, generation: u64 },
}

impl Backing {
    #[inline]
    fn as_bytes(&self) -> &[u8] {
        match self {
            Backing::Heap(v) => v,
            Backing::Mapped { map, .. } => map,
        }
    }
}

/// An immutable, reference-counted byte slice with O(1) `clone` and
/// O(1) `slice`.
///
/// The backing storage is either a heap allocation ([`PageBuf::from_vec`]
/// and friends) or a read-only mapped file region
/// ([`PageBuf::map_file`]) — the API and the copy discipline are
/// identical for both; [`PageBuf::is_mapped`] tells them apart for
/// white-box assertions.
#[derive(Clone)]
pub struct PageBuf {
    data: Arc<Backing>,
    start: usize,
    len: usize,
}

impl PageBuf {
    /// An empty buffer (no allocation shared).
    pub fn new() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<Backing>> = std::sync::OnceLock::new();
        let data = Arc::clone(EMPTY.get_or_init(|| Arc::new(Backing::Heap(Vec::new()))));
        Self {
            data,
            start: 0,
            len: 0,
        }
    }

    /// Take ownership of a vector without copying its contents.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::new(Backing::Heap(v)),
            start: 0,
            len,
        }
    }

    /// Map `file` read-only at its current length and wrap the whole
    /// mapping as a buffer. Zero payload copies: the bytes stay in the
    /// page cache and every [`PageBuf::slice`] of the result is lent
    /// from the mapping by refcount (the mapping unmaps when the last
    /// slice drops).
    ///
    /// On unix the mapping is `MAP_SHARED`, so bytes appended to the
    /// file through its descriptor *after* mapping become visible at
    /// their offsets — the append-only page-log contract. Callers must
    /// never rewrite a byte range they have already handed out.
    pub fn map_file(file: &std::fs::File) -> std::io::Result<Self> {
        Self::map_file_tagged(file, 0)
    }

    /// [`PageBuf::map_file`], tagging the mapping with a log
    /// **generation** number. Compaction creates a fresh generation
    /// file and swaps the mapping; the tag (readable via
    /// [`PageBuf::mapping_generation`] on every slice) is how tests
    /// assert that pre-swap readers keep the old generation alive while
    /// new serves come from the new one.
    pub fn map_file_tagged(file: &std::fs::File, generation: u64) -> std::io::Result<Self> {
        // SAFETY: the workspace's mapped files are append-only page
        // logs — previously written ranges are immutable by protocol
        // (pages are immutable once acknowledged), upholding the map
        // invariant.
        let map = unsafe { memmap2::Mmap::map(file) }?;
        let len = map.len();
        Ok(Self {
            data: Arc::new(Backing::Mapped { map, generation }),
            start: 0,
            len,
        })
    }

    /// True when this buffer's backing is a mapped file region rather
    /// than a heap allocation (white-box metric for zero-copy
    /// assertions on the persistent provider path).
    pub fn is_mapped(&self) -> bool {
        matches!(*self.data, Backing::Mapped { .. })
    }

    /// The generation tag of the mapped backing (`None` for heap
    /// buffers). Shared by every slice of one mapping.
    pub fn mapping_generation(&self) -> Option<u64> {
        match *self.data {
            Backing::Heap(_) => None,
            Backing::Mapped { generation, .. } => Some(generation),
        }
    }

    /// Copy a slice into a fresh buffer. This is the metered entry point
    /// for payload bytes: one copy here, zero copies downstream.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        copymeter::record_copy(s.len());
        Self::from_vec(s.to_vec())
    }

    /// A buffer of `n` zero bytes.
    pub fn zeroed(n: usize) -> Self {
        Self::from_vec(vec![0u8; n])
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_bytes()[self.start..self.start + self.len]
    }

    /// O(1) sub-buffer sharing the backing allocation.
    ///
    /// # Panics
    /// If the range exceeds the buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice out of range"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Number of `PageBuf` handles sharing this allocation (white-box
    /// metric for sharing assertions in tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// True when `self` and `other` share the same backing allocation.
    pub fn same_allocation(&self, other: &PageBuf) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for PageBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PageBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for PageBuf {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PageBuf {}

impl Hash for PageBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf({} bytes @{}..)", self.len, self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_does_not_copy() {
        let before = copymeter::thread_snapshot();
        let b = PageBuf::from_vec(vec![1, 2, 3, 4]);
        assert_eq!(before.bytes_since(), 0, "from_vec must be zero-copy");
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn copy_from_slice_is_metered() {
        let before = copymeter::thread_snapshot();
        let b = PageBuf::copy_from_slice(&[0u8; 100]);
        assert_eq!(before.bytes_since(), 100);
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn slice_shares_allocation() {
        let b = PageBuf::from_vec((0..100u8).collect());
        let s = b.slice(10..20);
        assert_eq!(s.as_slice(), &(10..20u8).collect::<Vec<_>>()[..]);
        assert!(s.same_allocation(&b));
        assert_eq!(b.ref_count(), 2);
        let ss = s.slice(5..10);
        assert_eq!(ss.as_slice(), &[15, 16, 17, 18, 19]);
        assert!(ss.same_allocation(&b));
    }

    #[test]
    fn clone_is_refcount_bump() {
        let b = PageBuf::from_vec(vec![7; 1024]);
        let before = copymeter::thread_snapshot();
        let c = b.clone();
        assert_eq!(before.bytes_since(), 0);
        assert_eq!(b.ref_count(), 2);
        assert_eq!(b, c);
    }

    #[test]
    fn equality_is_by_content() {
        let a = PageBuf::from_vec(vec![1, 2, 3]);
        let b = PageBuf::from_vec(vec![0, 1, 2, 3, 4]).slice(1..4);
        assert_eq!(a, b);
        assert!(!a.same_allocation(&b));
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn out_of_range_slice_panics() {
        PageBuf::from_vec(vec![1]).slice(0..2);
    }

    #[test]
    fn map_file_lends_without_copying() {
        let path = std::env::temp_dir().join(format!("pagebuf-map-{}", std::process::id()));
        std::fs::write(&path, (0..64u8).collect::<Vec<_>>()).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let before = copymeter::thread_snapshot();
        let b = PageBuf::map_file(&f).unwrap();
        assert_eq!(before.bytes_since(), 0, "mapping is not a payload copy");
        assert!(b.is_mapped());
        assert_eq!(b.mapping_generation(), Some(0));
        assert!(!PageBuf::from_vec(vec![1]).is_mapped());
        assert_eq!(PageBuf::from_vec(vec![1]).mapping_generation(), None);
        let tagged = PageBuf::map_file_tagged(&f, 3).unwrap();
        assert_eq!(tagged.mapping_generation(), Some(3));
        assert_eq!(tagged.slice(1..5).mapping_generation(), Some(3));
        assert_eq!(b.len(), 64);
        let s = b.slice(16..32);
        assert!(s.is_mapped(), "slices of a mapping stay mapped");
        assert!(s.same_allocation(&b));
        assert_eq!(s.as_slice(), &(16..32u8).collect::<Vec<_>>()[..]);
        assert_eq!(b.ref_count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
