//! The `FxHash` algorithm used throughout rustc, reimplemented here so the
//! workspace does not depend on `rustc-hash`.
//!
//! It is a non-cryptographic multiply-rotate hash that is extremely fast on
//! short integer-like keys — exactly the shape of our hot keys
//! (`(blob, version, offset, size)` tuples, page indices, node ids).
//! HashDoS resistance is irrelevant here: keys are internal, never
//! attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed constant: `floor(2^64 / phi)`, the same constant rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher (the rustc `FxHash` function).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // lint: allow(panic-on-serving-path) — chunks_exact(8) yields exactly 8 bytes
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single `u64` to a well-mixed `u64` (splitmix64 finalizer).
///
/// Used for ring positions and key-to-shard routing where we need the full
/// avalanche property that raw `FxHash` of a single word lacks.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash arbitrary bytes with `FxHasher` (convenience for wire keys).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(hash_bytes(b"blobseer"), hash_bytes(b"blobseer"));
        assert_ne!(hash_bytes(b"blobseer"), hash_bytes(b"blobsees"));
    }

    #[test]
    fn mix64_avalanches_low_bits() {
        // Consecutive inputs must land in different high bits most of the
        // time; a weak mixer would leave the top bits identical.
        let mut distinct_tops = FxHashSet::default();
        for i in 0..1024u64 {
            distinct_tops.insert(mix64(i) >> 48);
        }
        assert!(distinct_tops.len() > 900, "got {}", distinct_tops.len());
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn write_variants_differ_from_byte_stream() {
        // Sanity: writing a u64 as an integer vs as bytes may differ, but
        // each must be self-consistent.
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn unaligned_tail_is_hashed() {
        assert_ne!(hash_bytes(b"123456789"), hash_bytes(b"12345678"));
        assert_ne!(hash_bytes(b"123456789"), hash_bytes(b"123456780"));
    }
}
