//! A slab-backed intrusive LRU cache.
//!
//! This is the substrate of the client-side metadata cache: the paper's
//! experiments use a cache that "can accommodate 2^20 tree nodes", and
//! because tree nodes are immutable the cache never needs invalidation —
//! only capacity-driven eviction, which an LRU provides.
//!
//! Entries live in a slab (`Vec<Option<Entry>>`) threaded by an intrusive
//! doubly-linked recency list of `u32` indices, so a cache hit is one hash
//! probe and four index writes — no allocation, no pointer chasing through
//! separate heap nodes.

use crate::fxhash::FxHashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: u32,
    next: u32,
}

/// A fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    map: FxHashMap<K, u32>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `capacity >= u32::MAX as usize`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruCache capacity must be positive");
        assert!(
            (capacity as u64) < u32::MAX as u64,
            "capacity too large for u32 indices"
        );
        Self {
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn entry(&self, idx: u32) -> &Entry<K, V> {
        // lint: allow(panic-on-serving-path) — indices come only from the map or
        // the intrusive list, both of which reference live slots
        self.slab[idx as usize].as_ref().expect("live slot")
    }

    fn entry_mut(&mut self, idx: u32) -> &mut Entry<K, V> {
        // lint: allow(panic-on-serving-path) — same slot-liveness invariant as `entry`
        self.slab[idx as usize].as_mut().expect("live slot")
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let e = self.entry(idx);
            (e.prev, e.next)
        };
        if prev != NIL {
            self.entry_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entry_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let e = self.entry_mut(idx);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: u32) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Look up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.touch(idx);
                Some(&self.entry(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency (for read-mostly probing).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.entry(idx).value)
    }

    /// True if `key` is cached (does not touch recency or counters).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert (or replace) `key -> value`, evicting the LRU entry when at
    /// capacity. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.entry_mut(idx).value = value;
            self.touch(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL, "non-empty cache must have a tail");
            self.unlink(tail);
            // lint: allow(panic-on-serving-path) — a full cache has a live tail
            // (debug-asserted above)
            let old = self.slab[tail as usize].take().expect("live tail");
            self.map.remove(&old.key);
            self.free.push(tail);
            evicted = Some((old.key, old.value));
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.slab[slot as usize] = Some(entry);
            slot
        } else {
            let slot = self.slab.len() as u32;
            self.slab.push(Some(entry));
            slot
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        // lint: allow(panic-on-serving-path) — the map only references live slots
        let e = self.slab[idx as usize].take().expect("live slot");
        self.free.push(idx);
        Some(e.value)
    }

    /// Drop every entry, keeping allocations and statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterate `(key, value)` pairs from most to least recently used.
    pub fn iter_mru(&self) -> MruIter<'_, K, V> {
        MruIter {
            cache: self,
            cursor: self.head,
        }
    }
}

/// Iterator over cache entries in recency order. See [`LruCache::iter_mru`].
pub struct MruIter<'a, K, V> {
    cache: &'a LruCache<K, V>,
    cursor: u32,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for MruIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let e = self.cache.entry(self.cursor);
        self.cursor = e.next;
        Some((&e.key, &e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&2), Some(&"b"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.get(&1); // 2 becomes LRU
        let ev = c.insert(3, "c");
        assert_eq!(ev, Some((2, "b")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.insert(1, "a2"), None); // 1 becomes MRU
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.peek(&1), Some(&"a2"));
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.remove(&1), Some("a"));
        assert_eq!(c.len(), 1);
        c.insert(3, "c"); // reuses freed slot, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&2), Some(&"b"));
        assert_eq!(c.peek(&3), Some(&"c"));
        assert_eq!(c.remove(&42), None);
    }

    #[test]
    fn capacity_one_cycles() {
        let mut c = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.peek(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.peek(&1); // must NOT protect 1
        c.insert(3, "c");
        assert_eq!(c.peek(&1), None, "peek must not refresh recency");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.get(&1);
        c.get(&1);
        c.get(&9);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn iter_mru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        c.get(&1);
        let order: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.insert(3, 3);
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = LruCache::new(64);
        for i in 0..10_000u64 {
            c.insert(i % 200, i);
            if i % 3 == 0 {
                c.get(&(i % 97));
            }
            if i % 7 == 0 {
                c.remove(&(i % 50));
            }
            assert!(c.len() <= 64);
        }
        // Every reported entry must be reachable via get.
        let keys: Vec<u64> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), c.len());
        for k in keys {
            assert!(c.contains(&k));
        }
    }
}
