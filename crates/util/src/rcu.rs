//! [`RcuCell`] — wait-free reads of a rarely replaced value.
//!
//! The classic read-copy-update shape for read-mostly configuration data:
//! readers follow a single atomic pointer to an immutable snapshot (one
//! load, no reference-count traffic, no lock, cannot block or be blocked);
//! writers build a replacement snapshot and publish it with one atomic
//! store, serialized among themselves by a mutex that readers never touch.
//!
//! Reclamation is by **retention**: every snapshot ever published stays
//! allocated until the cell itself drops, which makes the reader side
//! trivially safe (a loaded pointer can never dangle) at the cost of one
//! retained allocation per *update*. That trade is deliberate and only
//! fits rare-update data — the provider manager's roster is the intended
//! tenant (membership changes are O(cluster size) over a process
//! lifetime, while `plan_write` reads the roster millions of times per
//! second). Do not put per-operation state in here.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A cell whose value is read without any lock and replaced wholesale.
///
/// See the module docs for the reclamation contract: memory grows by one
/// retained snapshot per [`RcuCell::store`]/[`RcuCell::update`] call, so
/// this type is for rare-update, read-dominated data only.
pub struct RcuCell<T> {
    current: AtomicPtr<T>,
    /// Every snapshot ever published, including the current one. Doubles
    /// as the writer-side serialization lock.
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: `RcuCell` hands out `&T` from any thread and moves `T` values
// in from any thread, so it is Sync/Send exactly when `T` is.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}
unsafe impl<T: Send> Send for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Create a cell holding `value`.
    pub fn new(value: T) -> Self {
        let p = Box::into_raw(Box::new(value));
        Self {
            current: AtomicPtr::new(p),
            retired: Mutex::new(vec![p]),
        }
    }

    /// The current snapshot. One atomic load; never blocks, never spins,
    /// touches no reference count. The reference stays valid for the
    /// cell's whole lifetime even if a new snapshot is published
    /// concurrently (old snapshots are retained, not freed).
    #[inline]
    pub fn load(&self) -> &T {
        // SAFETY: `current` always points to a Box published by `new`,
        // `store` or `update`; those allocations are freed only in
        // `drop`, which requires exclusive access to `self`.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Publish `value` as the new snapshot.
    pub fn store(&self, value: T) {
        let p = Box::into_raw(Box::new(value));
        let mut retired = self.retired.lock();
        self.current.store(p, Ordering::Release);
        retired.push(p);
    }

    /// Replace the snapshot with `f(current)`, serialized against other
    /// writers (the closure observes the true latest snapshot — no lost
    /// updates). Returns the closure's second output.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> R {
        let mut retired = self.retired.lock();
        // SAFETY: as in `load`; additionally no writer can race us while
        // we hold the retired-list lock.
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        let (next, out) = f(cur);
        let p = Box::into_raw(Box::new(next));
        self.current.store(p, Ordering::Release);
        retired.push(p);
        out
    }

    /// Number of snapshots retained (diagnostics; ≥ 1).
    pub fn retained(&self) -> usize {
        self.retired.lock().len()
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        for p in self.retired.get_mut().drain(..) {
            // SAFETY: each pointer was produced by `Box::into_raw`, is
            // distinct (pushed exactly once), and nothing can read it
            // anymore — freeing requires `&mut self`.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

impl<T: Default> Default for RcuCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RcuCell").field(self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn load_store_roundtrip() {
        let c = RcuCell::new(vec![1, 2, 3]);
        assert_eq!(c.load(), &[1, 2, 3]);
        c.store(vec![4]);
        assert_eq!(c.load(), &[4]);
        assert_eq!(c.retained(), 2);
    }

    #[test]
    fn old_references_survive_updates() {
        let c = RcuCell::new(String::from("first"));
        let old = c.load();
        c.store(String::from("second"));
        // The pre-update reference is still valid and unchanged.
        assert_eq!(old, "first");
        assert_eq!(c.load(), "second");
    }

    #[test]
    fn update_serializes_writers() {
        let c = Arc::new(RcuCell::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..250 {
                        c.update(|&v| (v + 1, ()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*c.load(), 1000, "no lost updates");
        assert_eq!(c.retained(), 1001);
    }

    #[test]
    fn concurrent_readers_never_tear() {
        // Readers must always observe a complete snapshot, never a mix.
        let c = Arc::new(RcuCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (a, b) = *c.load();
                        assert_eq!(a, b, "snapshot torn");
                    }
                })
            })
            .collect();
        for i in 1..200u64 {
            c.store((i, i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
