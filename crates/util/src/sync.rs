//! Small synchronization primitives.
//!
//! * [`OnceSlot`] — a write-once cell where readers *wait* (spin then park)
//!   for the value. This is the publication primitive behind the version
//!   manager's concurrent history: slot `w` is filled exactly once by the
//!   writer that was assigned version `w`, and any later writer/reader
//!   needing `history[w]` blocks only for the tiny window between
//!   assignment and the slot store.
//! * [`SpinWait`] — a bounded exponential-backoff spinner used by CAS
//!   loops (NIC/CPU reservation registers, publish watermark).

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

const EMPTY: u8 = 0;
const WRITING: u8 = 1;
const READY: u8 = 2;

/// A write-once slot whose readers block until the value arrives.
///
/// Unlike `std::sync::OnceLock::wait` (unstable at the time of writing),
/// this couples the fast path (a single `Acquire` load) with a
/// condvar-parked slow path.
pub struct OnceSlot<T> {
    state: AtomicU8,
    value: OnceLock<T>,
    lock: Mutex<()>,
    cond: Condvar,
}

impl<T> Default for OnceSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceSlot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Self {
            state: AtomicU8::new(EMPTY),
            value: OnceLock::new(),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Store the value. Returns `false` (and drops `value`) if the slot was
    /// already set by another thread.
    pub fn set(&self, value: T) -> bool {
        if self
            .state
            .compare_exchange(EMPTY, WRITING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let ok = self.value.set(value).is_ok();
        debug_assert!(ok, "state machine guarantees single set");
        self.state.store(READY, Ordering::Release);
        let _g = self.lock.lock();
        self.cond.notify_all();
        true
    }

    /// Non-blocking read.
    pub fn try_get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == READY {
            self.value.get()
        } else {
            None
        }
    }

    /// True once a value has been published.
    pub fn is_set(&self) -> bool {
        self.state.load(Ordering::Acquire) == READY
    }

    /// Blocking read: spins briefly, then parks on a condvar.
    pub fn wait(&self) -> &T {
        // Fast path + bounded spin.
        let mut spin = SpinWait::new();
        for _ in 0..64 {
            if let Some(v) = self.try_get() {
                return v;
            }
            spin.spin();
        }
        // Park.
        let mut g = self.lock.lock();
        loop {
            if self.state.load(Ordering::Acquire) == READY {
                drop(g);
                // lint: allow(panic-on-serving-path) — READY is published with
                // release ordering only after the value is set
                return self.value.get().expect("READY implies set");
            }
            self.cond.wait(&mut g);
        }
    }
}

/// Bounded exponential backoff for CAS retry loops.
#[derive(Default)]
pub struct SpinWait {
    counter: u32,
}

impl SpinWait {
    /// Fresh backoff state.
    pub fn new() -> Self {
        Self { counter: 0 }
    }

    /// Spin once; escalates from `spin_loop` hints to `yield_now`.
    pub fn spin(&mut self) {
        self.counter = (self.counter + 1).min(10);
        if self.counter <= 6 {
            for _ in 0..(1u32 << self.counter) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
    }

    /// Reset to the cheap-spin regime.
    pub fn reset(&mut self) {
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_get() {
        let s: OnceSlot<u32> = OnceSlot::new();
        assert!(s.try_get().is_none());
        assert!(!s.is_set());
        assert!(s.set(42));
        assert_eq!(s.try_get(), Some(&42));
        assert_eq!(*s.wait(), 42);
        assert!(s.is_set());
    }

    #[test]
    fn second_set_rejected() {
        let s: OnceSlot<String> = OnceSlot::new();
        assert!(s.set("first".into()));
        assert!(!s.set("second".into()));
        assert_eq!(s.try_get().map(String::as_str), Some("first"));
    }

    #[test]
    fn waiters_wake_up() {
        let s: Arc<OnceSlot<u64>> = Arc::new(OnceSlot::new());
        let seen = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    let v = *s.wait();
                    assert_eq!(v, 7);
                    seen.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        assert!(s.set(7));
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn racing_setters_exactly_one_wins() {
        for _ in 0..50 {
            let s: Arc<OnceSlot<usize>> = Arc::new(OnceSlot::new());
            let wins = Arc::new(AtomicUsize::new(0));
            let ts: Vec<_> = (0..4)
                .map(|i| {
                    let s = Arc::clone(&s);
                    let wins = Arc::clone(&wins);
                    thread::spawn(move || {
                        if s.set(i) {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(wins.load(Ordering::SeqCst), 1);
            assert!(s.try_get().is_some());
        }
    }

    #[test]
    fn spinwait_escalates_without_panic() {
        let mut s = SpinWait::new();
        for _ in 0..100 {
            s.spin();
        }
        s.reset();
        s.spin();
    }
}
