//! A sharded concurrent CLOCK cache with lock-free hit accounting.
//!
//! This is PR 2's replacement for the client metadata cache's
//! `Mutex<LruCache>`: the single mutex serialized every tree-node probe
//! of every reader thread, which is exactly the contention the paper's
//! design forbids. The CLOCK policy is chosen *because* it needs no
//! recency-list surgery on a hit — a hit is a shard **read** lock plus
//! one relaxed atomic store of the slot's reference bit, so concurrent
//! readers never serialize each other. Eviction (second-chance sweep)
//! and insertion take the shard's write lock, whose critical section is
//! bounded and allocation-free; with the default shard count, two
//! operations collide only on a shard-index collision.
//!
//! Every acquisition is charged to [`lockmeter`]:
//! hits/probes as [`Shared`](crate::lockmeter::LockClass::Shared),
//! insert/evict/remove as
//! [`Sharded`](crate::lockmeter::LockClass::Sharded). Under the
//! serialized-control-plane ablation
//! ([`lockmeter::set_serialized_control_plane`]
//! (crate::lockmeter::set_serialized_control_plane)) every operation
//! additionally funnels through one global mutex, reproducing the
//! pre-PR-2 regime for before/after benchmarks.
//!
//! Values are cloned out on hit — use `Arc<T>` values (the metadata
//! cache stores `Arc<NodeBody>`) so a hit moves a refcount, not bytes.

use crate::fxhash::{mix64, FxBuildHasher, FxHashMap};
use crate::lockmeter;
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Slot<K, V> {
    key: K,
    value: V,
    /// CLOCK reference bit: set on hit (under the shard *read* lock),
    /// cleared by the eviction sweep (under the write lock).
    referenced: AtomicBool,
}

struct ShardInner<K, V> {
    /// Key → slot index.
    map: FxHashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    /// The clock hand: next eviction candidate.
    hand: u32,
}

struct Shard<K, V> {
    inner: RwLock<ShardInner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A fixed-capacity concurrent cache, sharded by key hash, with CLOCK
/// (second chance) eviction per shard. See the module docs.
pub struct ClockCache<K, V> {
    shards: Vec<Shard<K, V>>,
    mask: usize,
    per_shard: usize,
    hasher: FxBuildHasher,
    /// Engaged only under the serialized-control-plane ablation.
    serial: Mutex<()>,
}

impl<K: Eq + Hash + Clone, V: Clone> ClockCache<K, V> {
    /// Create a cache holding at least `capacity` entries across a
    /// default shard count (64, or fewer for tiny capacities). The
    /// effective capacity is `capacity` rounded up to a multiple of the
    /// shard count.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        let shards = 64.min(capacity.next_power_of_two());
        Self::with_shards(capacity, shards)
    }

    /// Create with an explicit shard count (rounded up to a power of
    /// two). Per-shard capacity is `ceil(capacity / shards)`, at least 1.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "ClockCache capacity must be positive");
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(n).max(1);
        assert!(
            (per_shard as u64) < u32::MAX as u64,
            "per-shard capacity too large for u32 indices"
        );
        Self {
            shards: (0..n)
                .map(|_| Shard {
                    inner: RwLock::new(ShardInner {
                        map: FxHashMap::default(),
                        slots: Vec::new(),
                        hand: 0,
                    }),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
                .collect(),
            mask: n - 1,
            per_shard,
            hasher: FxBuildHasher::default(),
            serial: Mutex::new(()),
        }
    }

    fn shard_for(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key);
        &self.shards[(mix64(h) as usize) & self.mask]
    }

    /// Take the global ablation mutex when the serialized regime is on;
    /// charges the meter accordingly. In the normal (lock-free) regime
    /// this is a single relaxed atomic load and no lock.
    fn ablation_guard(&self) -> Option<MutexGuard<'_, ()>> {
        if lockmeter::serialized_control_plane() {
            lockmeter::record_serializing();
            Some(self.serial.lock())
        } else {
            None
        }
    }

    /// Look up `key`, cloning the value out and setting the slot's
    /// reference bit. Concurrent hits on one shard proceed in parallel
    /// (shared lock + relaxed atomic store).
    pub fn get(&self, key: &K) -> Option<V> {
        let _serial = self.ablation_guard();
        lockmeter::record_shared();
        let shard = self.shard_for(key);
        let inner = shard.inner.read();
        match inner.map.get(key) {
            Some(&idx) => {
                let slot = &inner.slots[idx as usize];
                slot.referenced.store(true, Ordering::Relaxed);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.value.clone())
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// True if `key` is cached. Does not touch the reference bit or the
    /// hit/miss counters.
    pub fn contains(&self, key: &K) -> bool {
        lockmeter::record_shared();
        self.shard_for(key).inner.read().map.contains_key(key)
    }

    /// Insert (or replace) `key -> value`. A new entry starts with its
    /// reference bit clear, so one full sweep without a hit evicts it
    /// (second chance); a replaced entry is marked referenced. When the
    /// shard is full the CLOCK sweep picks the first unreferenced slot,
    /// clearing reference bits as it passes.
    pub fn insert(&self, key: K, value: V) {
        let _serial = self.ablation_guard();
        lockmeter::record_sharded();
        let shard = self.shard_for(&key);
        let mut inner = shard.inner.write();
        Self::insert_inner(&mut inner, self.per_shard, key, value);
    }

    /// The insert/evict logic, run under a shard's write lock.
    fn insert_inner(inner: &mut ShardInner<K, V>, per_shard: usize, key: K, value: V) {
        if let Some(&idx) = inner.map.get(&key) {
            let slot = &mut inner.slots[idx as usize];
            slot.value = value;
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        if inner.slots.len() < per_shard {
            let idx = inner.slots.len() as u32;
            inner.slots.push(Slot {
                key: key.clone(),
                value,
                referenced: AtomicBool::new(false),
            });
            inner.map.insert(key, idx);
            return;
        }
        // Shard full: second-chance sweep. Terminates within two laps —
        // the first lap clears every reference bit it passes.
        let victim = loop {
            let i = inner.hand as usize;
            inner.hand = ((i + 1) % inner.slots.len()) as u32;
            if !inner.slots[i].referenced.swap(false, Ordering::Relaxed) {
                break i;
            }
        };
        let old_key = inner.slots[victim].key.clone();
        inner.map.remove(&old_key);
        inner.slots[victim] = Slot {
            key: key.clone(),
            value,
            referenced: AtomicBool::new(false),
        };
        inner.map.insert(key, victim as u32);
    }

    /// Best-effort [`ClockCache::insert`]: gives up (returning `false`)
    /// instead of blocking when the shard is write-locked by someone
    /// else. A cache population is an optimization, never a correctness
    /// requirement, so hot paths (a writer caching the tree it just
    /// built) use this to stay non-blocking under oversubscription.
    pub fn try_insert(&self, key: K, value: V) -> bool {
        if lockmeter::serialized_control_plane() {
            // The ablation regime models the old always-blocking cache.
            self.insert(key, value);
            return true;
        }
        let shard = self.shard_for(&key);
        let Some(mut inner) = shard.inner.try_write() else {
            return false;
        };
        lockmeter::record_sharded();
        Self::insert_inner(&mut inner, self.per_shard, key, value);
        true
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let _serial = self.ablation_guard();
        lockmeter::record_sharded();
        let shard = self.shard_for(key);
        let mut inner = shard.inner.write();
        let idx = inner.map.remove(key)? as usize;
        let removed = inner.slots.swap_remove(idx);
        // The former last slot (if any) moved into `idx`: re-point its
        // map entry and keep the hand in range.
        if idx < inner.slots.len() {
            let moved_key = inner.slots[idx].key.clone();
            inner.map.insert(moved_key, idx as u32);
        }
        if !inner.slots.is_empty() {
            inner.hand %= inner.slots.len() as u32;
        } else {
            inner.hand = 0;
        }
        Some(removed.value)
    }

    /// Drop every entry, keeping statistics.
    pub fn clear(&self) {
        for shard in &self.shards {
            lockmeter::record_sharded();
            let mut inner = shard.inner.write();
            inner.map.clear();
            inner.slots.clear();
            inner.hand = 0;
        }
    }

    /// Number of live entries (sums shard sizes; diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().slots.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.inner.read().slots.is_empty())
    }

    /// Total slot capacity (requested capacity rounded up to a multiple
    /// of the shard count).
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `(hits, misses)` since creation, summed across shards.
    pub fn stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for s in &self.shards {
            hits += s.hits.load(Ordering::Relaxed);
            misses += s.misses.load(Ordering::Relaxed);
        }
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let c: ClockCache<u64, u64> = ClockCache::with_shards(8, 1);
        assert!(c.is_empty());
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn reinsert_replaces_value() {
        let c: ClockCache<u64, &str> = ClockCache::with_shards(4, 1);
        c.insert(1, "a");
        c.insert(1, "a2");
        assert_eq!(c.get(&1), Some("a2"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clock_second_chance_protects_hit_entries() {
        // Single shard, capacity 3, deterministic hand.
        let c: ClockCache<u64, u64> = ClockCache::with_shards(3, 1);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        assert_eq!(c.get(&1), Some(1)); // reference bit set on 1
        c.insert(4, 4); // sweep: 1 gets a second chance, 2 is evicted
        assert_eq!(c.len(), 3);
        assert!(c.contains(&1), "referenced entry must survive the sweep");
        assert!(!c.contains(&2), "unreferenced entry at the hand is evicted");
        assert!(c.contains(&3) && c.contains(&4));
    }

    #[test]
    fn eviction_never_exceeds_capacity() {
        let c: ClockCache<u64, u64> = ClockCache::with_shards(16, 4);
        for i in 0..10_000 {
            c.insert(i, i);
            assert!(c.len() <= c.capacity());
        }
    }

    #[test]
    fn remove_keeps_map_and_hand_consistent() {
        let c: ClockCache<u64, u64> = ClockCache::with_shards(4, 1);
        for i in 0..4 {
            c.insert(i, i * 10);
        }
        // Force the hand forward, then remove entries to shrink the slab.
        c.insert(100, 1000);
        assert_eq!(c.len(), 4);
        let present: Vec<u64> = (0..101).filter(|k| c.contains(k)).collect();
        for k in &present {
            assert!(c.get(k).is_some());
        }
        for k in present {
            c.remove(&k);
        }
        assert!(c.is_empty());
        // Still usable after full drain.
        c.insert(7, 7);
        assert_eq!(c.get(&7), Some(7));
    }

    #[test]
    fn rounds_capacity_up_to_shards() {
        let c: ClockCache<u64, u64> = ClockCache::with_shards(5, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 8); // ceil(5/4) = 2 per shard
    }

    #[test]
    fn charges_the_lock_meter() {
        use crate::lockmeter;
        let c: ClockCache<u64, u64> = ClockCache::with_shards(8, 2);
        let snap = lockmeter::thread_snapshot();
        c.insert(1, 1);
        c.get(&1);
        c.get(&2);
        let d = snap.since();
        assert_eq!(d.sharded, 1, "one exclusive acquisition per insert");
        assert_eq!(d.shared, 2, "one shared acquisition per probe");
        assert_eq!(d.serializing, 0, "no singleton lock in the default regime");
    }
}
