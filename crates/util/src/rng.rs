//! Deterministic randomness helpers.
//!
//! Every simulation, workload generator and property test in the workspace
//! derives its randomness from an explicit `u64` seed so runs are
//! reproducible; these helpers centralize the stream-splitting scheme.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// splitmix64 step — the canonical seed-stretcher.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive a child seed from `(seed, stream)` such that different streams
/// are statistically independent.
#[inline]
pub fn child_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// A `SmallRng` for `(seed, stream)`.
pub fn rng_for(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(child_seed(seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the canonical implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(&mut s), 0x6e789e6aa1b965f4);
        assert_eq!(splitmix64(&mut s), 0x06c45d188009454f);
    }

    #[test]
    fn child_seeds_differ_by_stream() {
        let a = child_seed(42, 0);
        let b = child_seed(42, 1);
        let c = child_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, child_seed(42, 0));
    }

    #[test]
    fn rng_for_is_deterministic() {
        let mut r1 = rng_for(7, 3);
        let mut r2 = rng_for(7, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }
}
