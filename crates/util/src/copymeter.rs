//! Global accounting of payload-byte copies.
//!
//! The zero-copy data path is a measured property, not an asserted one:
//! every deliberate copy of page/payload bytes (into a
//! [`PageBuf`](crate::PageBuf), out of a wire frame, or into a read
//! result buffer) reports here, and the benchmark harnesses read the
//! counters to emit bytes-copied-per-operation. Counters are process
//! global and monotone; benchmarks snapshot-and-subtract around the
//! region of interest.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static COPY_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Record one copy of `n` payload bytes.
#[inline]
pub fn record_copy(n: usize) {
    if n > 0 {
        BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
        COPY_EVENTS.fetch_add(1, Ordering::Relaxed);
        THREAD_BYTES.with(|c| c.set(c.get() + n as u64));
        THREAD_EVENTS.with(|c| c.set(c.get() + 1));
    }
}

/// Payload bytes copied **by the calling thread** since it started.
/// Race-free by construction; what tests should assert against.
pub fn thread_bytes_copied() -> u64 {
    THREAD_BYTES.with(Cell::get)
}

/// Copy events recorded by the calling thread since it started.
pub fn thread_copy_events() -> u64 {
    THREAD_EVENTS.with(Cell::get)
}

/// Total payload bytes copied since process start.
pub fn bytes_copied() -> u64 {
    BYTES_COPIED.load(Ordering::Relaxed)
}

/// Total copy events since process start.
pub fn copy_events() -> u64 {
    COPY_EVENTS.load(Ordering::Relaxed)
}

/// Snapshot of both counters, for delta measurements.
///
/// [`snapshot`] observes the process-global meters (what multi-threaded
/// benchmarks want); [`thread_snapshot`] observes the calling thread's
/// meters only (what unit tests want — immune to concurrent tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopySnapshot {
    /// Bytes copied at snapshot time.
    pub bytes: u64,
    /// Copy events at snapshot time.
    pub events: u64,
    /// Whether this snapshot reads the thread-local meters.
    thread_local: bool,
}

/// Take a snapshot of the process-global meters.
pub fn snapshot() -> CopySnapshot {
    CopySnapshot {
        bytes: bytes_copied(),
        events: copy_events(),
        thread_local: false,
    }
}

/// Take a snapshot of the calling thread's meters.
pub fn thread_snapshot() -> CopySnapshot {
    CopySnapshot {
        bytes: thread_bytes_copied(),
        events: thread_copy_events(),
        thread_local: true,
    }
}

impl CopySnapshot {
    /// Bytes copied since this snapshot (on this thread, for thread
    /// snapshots).
    pub fn bytes_since(&self) -> u64 {
        let now = if self.thread_local {
            thread_bytes_copied()
        } else {
            bytes_copied()
        };
        now - self.bytes
    }

    /// Copy events since this snapshot (on this thread, for thread
    /// snapshots).
    pub fn events_since(&self) -> u64 {
        let now = if self.thread_local {
            thread_copy_events()
        } else {
            copy_events()
        };
        now - self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_accumulate() {
        let snap = thread_snapshot();
        record_copy(100);
        record_copy(0); // zero-byte copies are not events
        record_copy(28);
        assert_eq!(snap.bytes_since(), 128);
        assert_eq!(snap.events_since(), 2);
    }
}
