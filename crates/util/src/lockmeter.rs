//! Global accounting of control-plane lock acquisitions.
//!
//! The lock-free control plane is a *measured* property, not an asserted
//! one — exactly like the zero-copy data path and
//! [`copymeter`](crate::copymeter). Every acquisition of a control-plane lock reports
//! here under one of four classes, the tier-1 suite asserts the
//! steady-state invariant (see `crates/core/tests/lock_free.rs`), and the
//! `pr2_lockfree` bench emits locks-per-operation columns.
//!
//! The classes mirror the paper's concurrency argument ("the only
//! serialization occurs when interacting with the version manager"):
//!
//! * [`LockClass::Serializing`] — an exclusive acquisition of a
//!   **singleton** control-plane lock: one that serializes logically
//!   independent client operations against each other (the pre-PR-2
//!   provider-manager planning lock, the single metadata-cache mutex, the
//!   client geometry-map write lock, the serialized-mode ablation locks).
//!   The invariant is that steady-state operations take **zero** of
//!   these.
//! * [`LockClass::VersionAssign`] — the paper-sanctioned per-blob
//!   version-assignment mutex (§III.B). Exactly one per WRITE, zero per
//!   READ; charged separately so the invariant can be asserted as
//!   "nothing beyond this".
//! * [`LockClass::Sharded`] — an exclusive acquisition of a *sharded*
//!   control-plane lock with a bounded, allocation-free critical section
//!   (a metadata-cache shard during insert/evict, the provider-roster
//!   update lock). These do not serialize independent operations (two
//!   operations collide only on a shard collision) but are still
//!   exclusive, so they are counted, bounded by tests, and reported.
//! * [`LockClass::Shared`] — a shared (read) acquisition on control-plane
//!   state (a cache-shard read probe, the geometry-map read check).
//!   Readers never serialize each other.
//!
//! Counters are process global and monotone with thread-local mirrors;
//! benchmarks and tests snapshot-and-subtract around the region of
//! interest, exactly as with the copy meter.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which kind of control-plane lock was acquired. See the module docs for
/// the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockClass {
    /// Exclusive acquisition of a singleton control-plane lock.
    Serializing,
    /// The paper-sanctioned per-blob version-assignment mutex.
    VersionAssign,
    /// Exclusive acquisition of a sharded control-plane lock.
    Sharded,
    /// Shared (read) acquisition of a control-plane lock.
    Shared,
}

static SERIALIZING: AtomicU64 = AtomicU64::new(0);
static VERSION_ASSIGN: AtomicU64 = AtomicU64::new(0);
static SHARDED: AtomicU64 = AtomicU64::new(0);
static SHARED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static T_SERIALIZING: Cell<u64> = const { Cell::new(0) };
    static T_VERSION_ASSIGN: Cell<u64> = const { Cell::new(0) };
    static T_SHARDED: Cell<u64> = const { Cell::new(0) };
    static T_SHARED: Cell<u64> = const { Cell::new(0) };
}

/// Record one lock acquisition of the given class.
#[inline]
pub fn record(class: LockClass) {
    match class {
        LockClass::Serializing => {
            SERIALIZING.fetch_add(1, Ordering::Relaxed);
            T_SERIALIZING.with(|c| c.set(c.get() + 1));
        }
        LockClass::VersionAssign => {
            VERSION_ASSIGN.fetch_add(1, Ordering::Relaxed);
            T_VERSION_ASSIGN.with(|c| c.set(c.get() + 1));
        }
        LockClass::Sharded => {
            SHARDED.fetch_add(1, Ordering::Relaxed);
            T_SHARDED.with(|c| c.set(c.get() + 1));
        }
        LockClass::Shared => {
            SHARED.fetch_add(1, Ordering::Relaxed);
            T_SHARED.with(|c| c.set(c.get() + 1));
        }
    }
}

/// Record one serializing acquisition (see [`LockClass::Serializing`]).
#[inline]
pub fn record_serializing() {
    record(LockClass::Serializing);
}

/// Record one version-assignment acquisition.
#[inline]
pub fn record_version_assign() {
    record(LockClass::VersionAssign);
}

/// Record one sharded exclusive acquisition.
#[inline]
pub fn record_sharded() {
    record(LockClass::Sharded);
}

/// Record one shared (read) acquisition.
#[inline]
pub fn record_shared() {
    record(LockClass::Shared);
}

/// Counter values at one instant, per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockCounts {
    /// Singleton exclusive acquisitions.
    pub serializing: u64,
    /// Version-assignment mutex acquisitions.
    pub version_assign: u64,
    /// Sharded exclusive acquisitions.
    pub sharded: u64,
    /// Shared (read) acquisitions.
    pub shared: u64,
}

impl LockCounts {
    /// Every exclusive acquisition, sanctioned or not.
    pub fn total_exclusive(&self) -> u64 {
        self.serializing + self.version_assign + self.sharded
    }
}

fn global_counts() -> LockCounts {
    LockCounts {
        serializing: SERIALIZING.load(Ordering::Relaxed),
        version_assign: VERSION_ASSIGN.load(Ordering::Relaxed),
        sharded: SHARDED.load(Ordering::Relaxed),
        shared: SHARED.load(Ordering::Relaxed),
    }
}

fn thread_counts() -> LockCounts {
    LockCounts {
        serializing: T_SERIALIZING.with(Cell::get),
        version_assign: T_VERSION_ASSIGN.with(Cell::get),
        sharded: T_SHARDED.with(Cell::get),
        shared: T_SHARED.with(Cell::get),
    }
}

/// A snapshot of the lock meters, for delta measurements.
///
/// [`snapshot`] observes the process-global meters (what multi-threaded
/// benchmarks want); [`thread_snapshot`] observes the calling thread's
/// meters only (what unit tests want — immune to concurrent tests, and
/// valid end to end because the simulated transports dispatch service
/// handlers inline on the calling thread).
#[derive(Clone, Copy, Debug)]
pub struct LockSnapshot {
    at: LockCounts,
    thread_local: bool,
}

/// Take a snapshot of the process-global lock meters.
pub fn snapshot() -> LockSnapshot {
    LockSnapshot {
        at: global_counts(),
        thread_local: false,
    }
}

/// Take a snapshot of the calling thread's lock meters.
pub fn thread_snapshot() -> LockSnapshot {
    LockSnapshot {
        at: thread_counts(),
        thread_local: true,
    }
}

impl LockSnapshot {
    /// Acquisitions per class since this snapshot (on this thread, for
    /// thread snapshots).
    pub fn since(&self) -> LockCounts {
        let now = if self.thread_local {
            thread_counts()
        } else {
            global_counts()
        };
        LockCounts {
            serializing: now.serializing - self.at.serializing,
            version_assign: now.version_assign - self.at.version_assign,
            sharded: now.sharded - self.at.sharded,
            shared: now.shared - self.at.shared,
        }
    }
}

/// The seed's serialized control plane survives as an ablation (the
/// lock-discipline analogue of `wire::set_zero_copy(false)`): when
/// enabled, the provider manager takes a global mutex around every
/// `plan_write` and the sharded metadata cache takes a global mutex
/// around every operation — reproducing the pre-PR-2 contention regime
/// so the `pr2_lockfree` bench can measure before vs after. Process
/// global; benchmarks only.
static SERIALIZED_CONTROL_PLANE: AtomicBool = AtomicBool::new(false);

/// Enable or disable the serialized-control-plane ablation.
pub fn set_serialized_control_plane(enabled: bool) {
    SERIALIZED_CONTROL_PLANE.store(enabled, Ordering::Relaxed);
}

/// True when the serialized-control-plane ablation is active.
pub fn serialized_control_plane() -> bool {
    SERIALIZED_CONTROL_PLANE.load(Ordering::Relaxed)
}

/// RAII handle for a serialized-control-plane region in tests: holds the
/// exclusive side of the shared ablation lock (see [`crate::testsync`])
/// and restores the previous toggle value on drop, so a panicking test
/// cannot leave the process in the ablated regime.
pub struct SerializedAblation {
    prev: bool,
    _lock: crate::testsync::AblationWriteGuard,
}

/// Flip the serialized-control-plane ablation for the guard's lifetime,
/// serialized against every other test that touches or observes the
/// process-global toggles.
pub fn serialized_ablation(enabled: bool) -> SerializedAblation {
    let lock = crate::testsync::ablation_exclusive();
    let prev = serialized_control_plane();
    // lint: allow(unguarded-ablation) — this IS the RAII guard; the exclusive
    // testsync lock is held and `prev` restores on drop
    set_serialized_control_plane(enabled);
    SerializedAblation { prev, _lock: lock }
}

impl Drop for SerializedAblation {
    fn drop(&mut self) {
        // lint: allow(unguarded-ablation) — guard drop restoring the saved value
        set_serialized_control_plane(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_accumulate_per_class() {
        let snap = thread_snapshot();
        record_serializing();
        record_version_assign();
        record_version_assign();
        record_sharded();
        record_shared();
        record_shared();
        record_shared();
        let d = snap.since();
        assert_eq!(d.serializing, 1);
        assert_eq!(d.version_assign, 2);
        assert_eq!(d.sharded, 1);
        assert_eq!(d.shared, 3);
        assert_eq!(d.total_exclusive(), 4);
    }

    #[test]
    fn global_snapshot_sees_thread_charges() {
        let snap = snapshot();
        record_sharded();
        assert!(snap.since().sharded >= 1);
    }

    #[test]
    fn serialized_ablation_guard_restores_on_drop() {
        {
            let _g = serialized_ablation(true);
            assert!(serialized_control_plane());
        }
        assert!(!serialized_control_plane());
    }
}
