//! The shared record-then-commit append-only log engine.
//!
//! Extracted from the provider's page log (PR 5) so the control plane —
//! metadata tree nodes, version history — can ride the same proven
//! format: every record is `48-byte header + payload`, the header six
//! little-endian `u64`s (`magic, a, b, c, len, check`), and nothing is
//! acknowledged until a **commit marker** covering it is on disk
//! (optionally fsynced). Replay makes records visible marker by marker
//! and stops at the first invalid or out-of-sequence record, so a torn
//! tail can never surface un-acknowledged state.
//!
//! Two consumers share the engine with different trade-offs:
//!
//! * the provider's page log ([`crate::pagebuf::PageBuf`]-mapped, pages
//!   served as slices of the mapping) uses the header/check primitives
//!   from this module directly, keeping its own mmap-specific replay;
//! * [`RecordLog`] below is the plain-file variant for small
//!   control-plane records: positioned appends, group commit, replay by
//!   reading the file once — no mapping, no capacity pre-sizing.
//!
//! Like the page log, a [`RecordLog`] lives in a directory as
//! `<base>.g<N>.log` generation files: [`RecordLog::rewrite`] writes
//! the next generation to a `.tmp`, fsyncs, renames, and unlinks the
//! predecessor, so a crash at any point leaves exactly one winner.

use crate::rng::splitmix64;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bytes of one log-record header: six little-endian `u64`s —
/// `magic, a, b, c, len, check`.
pub const REC_HEADER: u64 = 48;

/// Magic of a tombstone record ("BSPGDEAD"): a reserved range whose
/// write failed while later appenders had already reserved beyond it.
/// Replay skips it instead of stopping, so the records committed
/// *after* the failure stay recoverable.
pub const TOMBSTONE_MAGIC: u64 = 0x4253_5047_4445_4144;

/// Magic of a commit marker ("BSPGCMT1"): field `a` is the marker's
/// sequence number, `b` the offset the previous marker sealed up to;
/// the marker commits every record between that offset and itself.
pub const COMMIT_MAGIC: u64 = 0x4253_5047_434d_5431;

/// Fast 64-bit digest of the payload bytes (8-byte chunks + tail),
/// folded into the record check word so a torn record — valid header,
/// partial payload — fails validation at replay instead of surfacing
/// corrupt bytes.
pub fn payload_digest(data: &[u8]) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        // lint: allow(panic-on-serving-path) — chunks_exact(8) yields exactly 8 bytes
        let w = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        acc = (acc ^ w)
            .rotate_left(23)
            .wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    for &b in chunks.remainder() {
        acc = (acc ^ b as u64)
            .rotate_left(9)
            .wrapping_mul(0x100_0000_01b3);
    }
    acc
}

/// The header check word: a splitmix64 hash over every header field and
/// the payload digest, so a single flipped bit anywhere in the record
/// fails validation.
pub fn check_word(magic: u64, a: u64, b: u64, c: u64, len: u64, digest: u64) -> u64 {
    let mut s = magic
        ^ a.rotate_left(17)
        ^ b.rotate_left(34)
        ^ c.rotate_left(51)
        ^ len
        ^ digest.rotate_left(7);
    splitmix64(&mut s)
}

/// Encode one record header (`magic, a, b, c, len, check`).
pub fn encode_header(magic: u64, a: u64, b: u64, c: u64, len: u64, digest: u64) -> [u8; 48] {
    let mut header = [0u8; REC_HEADER as usize];
    for (i, word) in [magic, a, b, c, len, check_word(magic, a, b, c, len, digest)]
        .into_iter()
        .enumerate()
    {
        header[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
    }
    header
}

/// Positioned write: the whole buffer at `off`, no seek on the shared
/// handle (unix `pwrite`; other platforms clone the handle and seek).
#[cfg(unix)]
pub fn write_at(file: &File, buf: &[u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, off)
}

/// Positioned write: the whole buffer at `off`, no seek on the shared
/// handle (unix `pwrite`; other platforms clone the handle and seek).
#[cfg(not(unix))]
pub fn write_at(file: &File, buf: &[u8], off: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(off))?;
    f.write_all(buf)
}

/// What can go wrong appending to or opening a [`RecordLog`]. The
/// `&'static str` names the failed operation; callers add file context
/// when surfacing it (e.g. as `BlobError::Recovery`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogError {
    /// An I/O operation failed.
    Io(&'static str),
    /// The medium failed in a way that could strand committed-but-
    /// unreplayable records; no further append may be acknowledged.
    Poisoned,
    /// A commit marker could not be sealed (the append's bytes are on
    /// disk but un-acknowledged — replay will not surface them).
    CommitFailed,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(op) => write!(f, "log I/O failed: {op}"),
            LogError::Poisoned => write!(f, "log poisoned by an earlier media failure"),
            LogError::CommitFailed => write!(f, "log commit marker could not be sealed"),
        }
    }
}

impl std::error::Error for LogError {}

/// Tuning knobs of a [`RecordLog`] (mirrors the page log's `LogOptions`
/// durability half).
#[derive(Debug, Clone, Copy)]
pub struct RecordLogOptions {
    /// `fdatasync` on every commit marker: an acknowledged append
    /// survives power loss, not just a process crash. One sync per
    /// *group* commit — concurrent appenders share it.
    pub fsync_on_commit: bool,
    /// How long a group-commit leader lingers before sealing, so
    /// concurrent appenders can join the same marker (and fsync).
    pub group_commit_window: Duration,
}

impl Default for RecordLogOptions {
    fn default() -> Self {
        Self {
            fsync_on_commit: false,
            group_commit_window: Duration::ZERO,
        }
    }
}

/// One record to append: header words + payload. `magic` must not be
/// [`COMMIT_MAGIC`] or [`TOMBSTONE_MAGIC`] (those are the engine's).
#[derive(Debug, Clone, Copy)]
pub struct Record<'a> {
    /// Record-type magic (caller-defined).
    pub magic: u64,
    /// First header word.
    pub a: u64,
    /// Second header word.
    pub b: u64,
    /// Third header word.
    pub c: u64,
    /// Payload bytes (digest-protected).
    pub payload: &'a [u8],
}

/// One committed record surfaced by replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedRecord {
    /// Record-type magic.
    pub magic: u64,
    /// First header word.
    pub a: u64,
    /// Second header word.
    pub b: u64,
    /// Third header word.
    pub c: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Byte offset of the record header in the log file (error context
    /// for callers whose payload decode fails).
    pub offset: u64,
}

/// Commit bookkeeping, guarded by the log's mutex (same protocol as the
/// page log's generation).
#[derive(Debug, Default)]
struct CommitState {
    /// Every byte below this offset is sealed by a marker (the marker
    /// bytes included). Replay never recovers past it.
    durable: u64,
    /// Contiguous completed-bytes frontier: every reserved range below
    /// it has finished its write (record, tombstone, or marker).
    frontier: u64,
    /// Completed ranges that landed out of order (`start → end`),
    /// merged into `frontier` as the gap before them closes.
    completed: BTreeMap<u64, u64>,
    /// Sequence number the next marker carries.
    next_seq: u64,
    /// A group-commit leader is in flight; followers wait for coverage.
    committing: bool,
    /// No further commit may succeed.
    poisoned: bool,
}

/// A crash-consistent append-only record log on a plain file.
///
/// * **Append** reserves a record range with a CAS on the tail offset
///   (concurrent appenders never interleave bytes), writes
///   `header + payload` with positioned I/O, then blocks until a
///   group-commit marker covers it: only committed records are
///   acknowledged, and only committed records replay.
/// * **Replay** (at [`RecordLog::open`]) reads the newest generation
///   file once and surfaces records marker by marker; it ends at the
///   first invalid or out-of-sequence record, and appends resume at the
///   last durable marker.
/// * **Rewrite** swaps in a compacted next generation atomically
///   (tmp → fsync → rename → unlink), the same crash story as page-log
///   compaction.
///
/// The commit mutex/condvar is durability machinery on the ack path,
/// not a control-plane serialization point — like the page log's, it is
/// deliberately outside the lockmeter.
pub struct RecordLog {
    dir: PathBuf,
    base: String,
    number: u64,
    file: File,
    path: PathBuf,
    opts: RecordLogOptions,
    /// Reservation frontier: appends CAS disjoint ranges off it.
    tail: AtomicU64,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
}

impl fmt::Debug for RecordLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecordLog")
            .field("path", &self.path)
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// `<base>.g<n>.log`.
fn log_file_name(base: &str, n: u64) -> String {
    format!("{base}.g{n}.log")
}

/// Parse a generation number out of a `<base>.g<n>.log` file name.
fn parse_log_name(base: &str, name: &str) -> Option<u64> {
    name.strip_prefix(base)?
        .strip_prefix(".g")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// One parsed record during replay.
enum Parsed {
    /// A payload record; `u64` is the offset one past its end.
    Payload(OwnedRecord, u64),
    /// A tombstone: skip to its end.
    Skip(u64),
    /// A commit marker.
    Commit {
        seq: u64,
        covered_from: u64,
        end: u64,
    },
}

fn read_word(buf: &[u8], off: u64) -> u64 {
    // lint: allow(truncating-cast) — parse_record checks off + REC_HEADER ≤
    // buf.len() (itself a usize) before every read_word call
    let s = &buf[off as usize..off as usize + 8];
    // lint: allow(panic-on-serving-path) — the slice above is exactly 8 bytes
    u64::from_le_bytes(s.try_into().expect("8 bytes"))
}

/// Parse the record at `off`; `None` is an invalid record (torn,
/// corrupt, out of bounds) — replay ends at the last durable point
/// before it.
fn parse_record(buf: &[u8], off: u64) -> Option<Parsed> {
    let limit = buf.len() as u64;
    if off + REC_HEADER > limit {
        return None;
    }
    let magic = read_word(buf, off);
    let a = read_word(buf, off + 8);
    let b = read_word(buf, off + 16);
    let c = read_word(buf, off + 24);
    let len = read_word(buf, off + 32);
    let check = read_word(buf, off + 40);
    let end = (off + REC_HEADER).checked_add(len)?;
    if end > limit {
        return None;
    }
    match magic {
        COMMIT_MAGIC => {
            // A marker carries no payload; its check covers the header
            // only.
            (len == 0 && check == check_word(magic, a, b, c, len, 0)).then_some(Parsed::Commit {
                seq: a,
                covered_from: b,
                end,
            })
        }
        TOMBSTONE_MAGIC => {
            // Tombstone check covers the header only — its payload
            // range is whatever the failed write left behind.
            (check == check_word(magic, a, b, c, len, 0)).then_some(Parsed::Skip(end))
        }
        _ => {
            // lint: allow(truncating-cast) — end ≤ limit = buf.len() (a usize)
            // was checked above; both bounds fit
            let payload = &buf[(off + REC_HEADER) as usize..end as usize];
            if check != check_word(magic, a, b, c, len, payload_digest(payload)) {
                return None;
            }
            Some(Parsed::Payload(
                OwnedRecord {
                    magic,
                    a,
                    b,
                    c,
                    // lint: allow(unmetered-copy) — replay materializes owned records
                    // at recovery time, not on the steady-state path
                    payload: payload.to_vec(),
                    offset: off,
                },
                end,
            ))
        }
    }
}

impl RecordLog {
    /// Open (or create) the log `<base>.g<N>.log` under `dir`, keeping
    /// the highest renamed generation (an interrupted rewrite's `.tmp`
    /// never wins) and removing the debris. Replays the survivor and
    /// returns every committed record in append order; appends resume
    /// at the last durable commit marker.
    pub fn open(
        dir: &Path,
        base: &str,
        opts: RecordLogOptions,
    ) -> Result<(Self, Vec<OwnedRecord>), LogError> {
        std::fs::create_dir_all(dir).map_err(|_| LogError::Io("create log dir"))?;
        let mut newest: Option<u64> = None;
        let mut debris: Vec<PathBuf> = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|_| LogError::Io("scan log dir"))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(base) && name.ends_with(".tmp") {
                debris.push(entry.path());
            } else if let Some(n) = parse_log_name(base, name) {
                match newest {
                    Some(best) if best >= n => debris.push(entry.path()),
                    Some(_) | None => {
                        if let Some(best) = newest {
                            debris.push(dir.join(log_file_name(base, best)));
                        }
                        newest = Some(n);
                    }
                }
            }
        }
        for stale in debris {
            let _ = std::fs::remove_file(stale);
        }
        let number = newest.unwrap_or(0);
        let path = dir.join(log_file_name(base, number));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|_| LogError::Io("open log file"))?;
        if opts.fsync_on_commit {
            // The directory entry of a freshly created log must reach
            // stable storage before any commit is acknowledged.
            File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|_| LogError::Io("sync log dir"))?;
        }
        let buf = std::fs::read(&path).map_err(|_| LogError::Io("read log file"))?;

        // Replay: records become visible marker by marker.
        let mut visible: Vec<OwnedRecord> = Vec::new();
        let mut pending: Vec<OwnedRecord> = Vec::new();
        let mut durable = 0u64;
        let mut seq = 0u64;
        let mut off = 0u64;
        while let Some(parsed) = parse_record(&buf, off) {
            match parsed {
                Parsed::Payload(rec, end) => {
                    pending.push(rec);
                    off = end;
                }
                Parsed::Skip(end) => off = end,
                Parsed::Commit {
                    seq: s,
                    covered_from,
                    end,
                } => {
                    if s != seq || covered_from != durable {
                        break;
                    }
                    seq += 1;
                    durable = end;
                    visible.append(&mut pending);
                    off = end;
                }
            }
        }
        let log = Self {
            dir: dir.to_path_buf(),
            base: base.to_string(),
            number,
            file,
            path,
            opts,
            tail: AtomicU64::new(durable),
            commit: Mutex::new(CommitState {
                durable,
                frontier: durable,
                next_seq: seq,
                ..CommitState::default()
            }),
            commit_cv: Condvar::new(),
        };
        Ok((log, visible))
    }

    /// Path of the current generation file (error context).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes (reserved tail).
    pub fn log_bytes(&self) -> u64 {
        self.tail.load(Ordering::Relaxed)
    }

    /// Append one record and block until a commit marker covers it.
    pub fn append(&self, rec: Record<'_>) -> Result<(), LogError> {
        self.append_batch(std::slice::from_ref(&rec))
    }

    /// Append a batch of records contiguously and block until one
    /// commit marker covers them all (one marker, one optional fsync —
    /// the control-plane analogue of RPC aggregation).
    pub fn append_batch(&self, recs: &[Record<'_>]) -> Result<(), LogError> {
        if recs.is_empty() {
            return Ok(());
        }
        let total: u64 = recs
            .iter()
            .map(|r| REC_HEADER + r.payload.len() as u64)
            .sum();
        let start = self.tail.fetch_add(total, Ordering::Relaxed);
        let mut off = start;
        let mut failed = false;
        for r in recs {
            debug_assert!(r.magic != COMMIT_MAGIC && r.magic != TOMBSTONE_MAGIC);
            let header = encode_header(
                r.magic,
                r.a,
                r.b,
                r.c,
                r.payload.len() as u64,
                payload_digest(r.payload),
            );
            if write_at(&self.file, &header, off).is_err()
                || write_at(&self.file, r.payload, off + REC_HEADER).is_err()
            {
                failed = true;
                break;
            }
            off += REC_HEADER + r.payload.len() as u64;
        }
        if failed {
            // Brand the whole reserved range one tombstone so replay
            // steps over it; if even that fails, poison the log.
            let tomb = encode_header(TOMBSTONE_MAGIC, 0, 0, 0, total - REC_HEADER, 0);
            if write_at(&self.file, &tomb, start).is_err() {
                self.commit.lock().poisoned = true;
            }
            self.complete(start, start + total);
            return Err(LogError::Io("write log record"));
        }
        self.complete(start, start + total);
        self.commit_covering(start + total)
    }

    /// `fdatasync` the log file (explicit durability point for callers
    /// running without `fsync_on_commit`).
    pub fn sync(&self) -> Result<(), LogError> {
        self.file.sync_data().map_err(|_| LogError::Io("sync log"))
    }

    /// Rewrite the log as a fresh generation containing exactly `recs`
    /// under one commit marker, atomically replacing the current file
    /// (tmp → fsync → rename → unlink). Used to checkpoint after
    /// replay: stale records beyond the last durable marker are
    /// physically dropped, so identifiers they mention can be reused.
    pub fn rewrite(&mut self, recs: &[Record<'_>]) -> Result<(), LogError> {
        let next = self.number + 1;
        let tmp = self.dir.join(format!("{}.g{next}.log.tmp", self.base));
        let fresh = self.dir.join(log_file_name(&self.base, next));
        let mut bytes: Vec<u8> = Vec::new();
        for r in recs {
            debug_assert!(r.magic != COMMIT_MAGIC && r.magic != TOMBSTONE_MAGIC);
            // lint: allow(unmetered-copy) — compaction rewrite buffers the new log
            // image; maintenance path, not per-op
            bytes.extend_from_slice(&encode_header(
                r.magic,
                r.a,
                r.b,
                r.c,
                r.payload.len() as u64,
                payload_digest(r.payload),
            ));
            // lint: allow(unmetered-copy) — compaction rewrite, see above
            bytes.extend_from_slice(r.payload);
        }
        let marker_at = bytes.len() as u64;
        // lint: allow(unmetered-copy) — commit marker append on the maintenance path
        bytes.extend_from_slice(&encode_header(COMMIT_MAGIC, 0, 0, 0, 0, 0));
        let durable = marker_at + REC_HEADER;
        std::fs::write(&tmp, &bytes).map_err(|_| LogError::Io("write rewritten log"))?;
        File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(|_| LogError::Io("sync rewritten log"))?;
        std::fs::rename(&tmp, &fresh).map_err(|_| LogError::Io("rename rewritten log"))?;
        let _ = File::open(&self.dir).and_then(|d| d.sync_all());
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&fresh)
            .map_err(|_| LogError::Io("open rewritten log"))?;
        let _ = std::fs::remove_file(&self.path);
        self.number = next;
        self.path = fresh;
        self.file = file;
        self.tail.store(durable, Ordering::Relaxed);
        *self.commit.lock() = CommitState {
            durable,
            frontier: durable,
            next_seq: 1,
            ..CommitState::default()
        };
        Ok(())
    }

    /// Record that the reserved range `[start, end)` finished its
    /// write, advancing the contiguous frontier when the gap before it
    /// closed, and wake anyone waiting on the frontier.
    fn complete(&self, start: u64, end: u64) {
        let mut st = self.commit.lock();
        if st.frontier == start {
            st.frontier = end;
            loop {
                let f = st.frontier;
                match st.completed.remove(&f) {
                    Some(e) => st.frontier = e,
                    None => break,
                }
            }
        } else {
            st.completed.insert(start, end);
        }
        self.commit_cv.notify_all();
    }

    /// Group commit: block until a marker covering `my_end` is durable.
    /// Exactly one leader at a time seals a marker; every append that
    /// completed before the seal rides the same marker (and the same
    /// optional fsync).
    fn commit_covering(&self, my_end: u64) -> Result<(), LogError> {
        loop {
            {
                let mut st = self.commit.lock();
                loop {
                    if st.durable >= my_end {
                        return Ok(());
                    }
                    if st.poisoned {
                        return Err(LogError::Poisoned);
                    }
                    if !st.committing {
                        st.committing = true;
                        break;
                    }
                    self.commit_cv.wait(&mut st);
                }
            }
            let sealed = self.commit_lead();
            let mut st = self.commit.lock();
            st.committing = false;
            self.commit_cv.notify_all();
            match sealed {
                // The marker slot is reserved at the tail, after this
                // append's completed record, so one round always covers
                // it — the loop is belt and braces.
                Ok(()) if st.durable >= my_end => return Ok(()),
                Ok(()) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The leader's half of a group commit: optionally linger so
    /// concurrent appends join the batch, reserve the marker slot at
    /// the tail, wait for every record below it to finish writing,
    /// seal, and (optionally) fsync.
    fn commit_lead(&self) -> Result<(), LogError> {
        if !self.opts.group_commit_window.is_zero() {
            std::thread::sleep(self.opts.group_commit_window);
        }
        let marker_at = self.tail.fetch_add(REC_HEADER, Ordering::Relaxed);
        let (seq, covered_from) = {
            let mut st = self.commit.lock();
            while st.frontier < marker_at {
                if st.poisoned {
                    return Err(LogError::Poisoned);
                }
                self.commit_cv.wait(&mut st);
            }
            // Re-check under the same lock: a failed append below the
            // marker slot poisons *before* completing its range, so a
            // frontier that already reached the slot can carry an
            // un-skippable hole.
            if st.poisoned {
                return Err(LogError::Poisoned);
            }
            debug_assert_eq!(st.frontier, marker_at, "marker slot is the frontier");
            (st.next_seq, st.durable)
        };
        let header = encode_header(COMMIT_MAGIC, seq, covered_from, 0, 0, 0);
        if write_at(&self.file, &header, marker_at).is_err() {
            // The marker slot would be an un-skippable hole: a later
            // marker could commit records replay can never reach. Brand
            // the slot a tombstone so replay steps over it; if even
            // that fails, poison the log.
            let tomb = encode_header(TOMBSTONE_MAGIC, 0, 0, 0, 0, 0);
            let mut st = self.commit.lock();
            if write_at(&self.file, &tomb, marker_at).is_err() {
                st.poisoned = true;
            }
            drop(st);
            self.complete(marker_at, marker_at + REC_HEADER);
            return Err(LogError::CommitFailed);
        }
        if self.opts.fsync_on_commit && self.file.sync_data().is_err() {
            // The marker bytes may or may not be durable; conservatively
            // stop acknowledging anything further.
            self.commit.lock().poisoned = true;
            self.complete(marker_at, marker_at + REC_HEADER);
            return Err(LogError::CommitFailed);
        }
        {
            let mut st = self.commit.lock();
            st.next_seq = seq + 1;
            st.durable = marker_at + REC_HEADER;
        }
        self.complete(marker_at, marker_at + REC_HEADER);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    const MAGIC_A: u64 = 0x5445_5354_4d41_4731; // "TESTMAG1"
    const MAGIC_B: u64 = 0x5445_5354_4d41_4732;

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: TestCounter = TestCounter::new(0);
        let d = std::env::temp_dir().join(format!(
            "recordlog-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn rec(a: u64, payload: &[u8]) -> Record<'_> {
        Record {
            magic: MAGIC_A,
            a,
            b: a * 2,
            c: a * 3,
            payload,
        }
    }

    #[test]
    fn roundtrip_single_and_batch() {
        let dir = tmp_dir("roundtrip");
        {
            let (log, replayed) =
                RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("open fresh log");
            assert!(replayed.is_empty());
            log.append(rec(1, b"one")).unwrap();
            log.append_batch(&[rec(2, b"two"), rec(3, b"three")])
                .unwrap();
        }
        let (log, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen log");
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].payload, b"one");
        assert_eq!(replayed[2].a, 3);
        assert_eq!(replayed[2].payload, b"three");
        // Appends resume cleanly after a replayed reopen.
        log.append(rec(4, b"four")).unwrap();
        let (_, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen again");
        assert_eq!(replayed.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_stops_at_last_marker() {
        let dir = tmp_dir("torn");
        let path = {
            let (log, _) =
                RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("open");
            log.append(rec(1, b"committed")).unwrap();
            log.path().to_path_buf()
        };
        // Simulate a crash mid-append: a record header with a payload
        // that never finished (digest mismatch).
        let tail = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        let header = encode_header(MAGIC_A, 9, 9, 9, 100, payload_digest(b"intended"));
        write_at(&file, &header, tail).unwrap();
        write_at(&file, b"torn", tail + REC_HEADER).unwrap();
        drop(file);
        let (_, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen");
        assert_eq!(replayed.len(), 1, "torn tail is invisible");
        assert_eq!(replayed[0].payload, b"committed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_records_do_not_replay() {
        let dir = tmp_dir("uncommitted");
        let path = {
            let (log, _) =
                RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("open");
            log.append(rec(1, b"acked")).unwrap();
            log.path().to_path_buf()
        };
        // A fully valid record *without* a covering marker (crash after
        // the record write, before the group commit sealed).
        let tail = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        let payload = b"never-acked";
        let header = encode_header(
            MAGIC_B,
            7,
            14,
            21,
            payload.len() as u64,
            payload_digest(payload),
        );
        write_at(&file, &header, tail).unwrap();
        write_at(&file, payload, tail + REC_HEADER).unwrap();
        drop(file);
        let (log, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen");
        assert_eq!(replayed.len(), 1, "uncommitted record must not surface");
        // The next append overwrites the dangling record and commits.
        log.append(rec(2, b"after")).unwrap();
        let (_, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen 2");
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].payload, b"after");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_swaps_generation_and_drops_history() {
        let dir = tmp_dir("rewrite");
        let (mut log, _) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("open");
        for i in 0..10 {
            log.append(rec(i, b"bulk")).unwrap();
        }
        let before = log.log_bytes();
        log.rewrite(&[rec(99, b"checkpoint")]).unwrap();
        assert!(log.log_bytes() < before);
        assert!(log.path().to_string_lossy().contains(".g1.log"));
        // Appends after a rewrite land in the new generation.
        log.append(rec(100, b"incremental")).unwrap();
        drop(log);
        let (log, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen");
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].a, 99);
        assert_eq!(replayed[1].a, 100);
        assert!(
            !dir.join("test.g0.log").exists(),
            "old generation unlinked after rewrite"
        );
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_all_replay() {
        let dir = tmp_dir("concurrent");
        let (log, _) = RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("open");
        let log = std::sync::Arc::new(log);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        log.append(rec(t * 1000 + i, b"payload")).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(log);
        let (_, replayed) =
            RecordLog::open(&dir, "test", RecordLogOptions::default()).expect("reopen");
        assert_eq!(replayed.len(), 200);
        let mut ids: Vec<u64> = replayed.iter().map(|r| r.a).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200, "every append replays exactly once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest::proptest! {
        // Hostile bytes: any file content must open to `Ok` (with
        // whatever committed prefix validates) or a typed error —
        // never a panic, never an out-of-bounds read.
        #[test]
        fn hostile_bytes_never_panic(bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..4096)) {
            let dir = tmp_dir("hostile");
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("test.g0.log"), &bytes).unwrap();
            let _ = RecordLog::open(&dir, "test", RecordLogOptions::default());
            let _ = std::fs::remove_dir_all(&dir);
        }

        // Truncating a valid log at any point never panics and never
        // surfaces a record that was not fully committed.
        #[test]
        fn truncation_never_panics(cut in 0usize..600) {
            let dir = tmp_dir("truncate");
            {
                let (log, _) =
                    RecordLog::open(&dir, "test", RecordLogOptions::default()).unwrap();
                log.append_batch(&[rec(1, b"alpha"), rec(2, b"beta")]).unwrap();
                log.append(rec(3, b"gamma")).unwrap();
            }
            let path = dir.join("test.g0.log");
            let bytes = std::fs::read(&path).unwrap();
            let cut = cut.min(bytes.len());
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (_, replayed) =
                RecordLog::open(&dir, "test", RecordLogOptions::default()).unwrap();
            // Whatever replays must be an exact prefix of what was acked.
            let acked: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma"];
            proptest::prop_assert!(replayed.len() <= acked.len());
            for (r, want) in replayed.iter().zip(acked) {
                proptest::prop_assert_eq!(&r.payload[..], want);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
