//! Online statistics and human-readable formatting for the benchmark
//! harnesses (EXPERIMENTS.md tables are produced from these).

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for < 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile over a stored sample set (fine for bench-scale data).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw samples, in insertion or sorted order (order is an
    /// implementation detail; use for merging sample sets).
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// The `p`-th percentile (0.0..=100.0) by nearest-rank; `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.data.is_empty() {
            return None;
        }
        if !self.sorted {
            self.data
                // lint: allow(panic-on-serving-path) — samples are finite durations
                // and ratios; NaN is never recorded
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.data.len() - 1) as f64).round() as usize;
        Some(self.data[rank.min(self.data.len() - 1)])
    }

    /// Arithmetic mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.data.iter().sum::<f64>() / self.data.len() as f64)
        }
    }
}

/// Format a byte count using binary units ("64 KiB", "1.5 MiB").
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 7] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    if bytes == 0 {
        return "0 B".to_string();
    }
    let exp = (63 - bytes.leading_zeros() as u64) / 10;
    let exp = exp.min(6);
    let scaled = bytes as f64 / (1u64 << (10 * exp)) as f64;
    if (scaled - scaled.round()).abs() < 1e-9 {
        format!("{} {}", scaled.round() as u64, UNITS[exp as usize])
    } else {
        format!("{:.2} {}", scaled, UNITS[exp as usize])
    }
}

/// Format nanoseconds as an adaptive duration ("1.25 ms", "3.4 s").
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{} ns", ns),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

/// Throughput in MB/s (decimal MB, matching the paper's "117.5 MB/s").
pub fn mbps(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (bytes as f64 / 1e6) / (ns as f64 / 1e9)
}

/// A minimal aligned-column table writer for harness stdout + CSV output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for `results/*.csv`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.stddev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn percentiles() {
        let mut s = Samples::new();
        for i in 0..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.percentile(0.0), Some(0.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(90.0), Some(90.0));
        assert_eq!(Samples::new().percentile(50.0), None);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(64 * 1024), "64 KiB");
        assert_eq!(fmt_bytes(16 * 1024 * 1024), "16 MiB");
        assert_eq!(fmt_bytes(1u64 << 40), "1 TiB");
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200 s");
    }

    #[test]
    fn throughput_math() {
        // 100 MB in 1 s = 100 MB/s.
        assert!((mbps(100_000_000, 1_000_000_000) - 100.0).abs() < 1e-9);
        assert_eq!(mbps(1, 0), 0.0);
    }

    #[test]
    fn table_renders_and_csv() {
        let mut t = Table::new(&["seg", "time"]);
        t.row(&["64 KiB".into(), "0.01 s".into()]);
        t.row(&["16 MiB".into(), "0.10 s".into()]);
        let s = t.render();
        assert!(s.contains("seg"));
        assert!(s.contains("16 MiB"));
        let csv = t.to_csv();
        assert!(csv.starts_with("seg,time\n"));
        assert_eq!(csv.lines().count(), 3);
    }
}
