//! Cross-test serialization for process-global ablation toggles.
//!
//! The workspace keeps its seed regimes alive as process-global runtime
//! switches — `blobseer_proto::wire::set_zero_copy` and
//! [`lockmeter::set_serialized_control_plane`](crate::lockmeter::set_serialized_control_plane)
//! — so benchmarks can
//! measure before vs after honestly. Inside one test binary, however,
//! `cargo test` runs tests on parallel threads: a test flipping a toggle
//! would poison every concurrently running copymeter/lockmeter assertion
//! in the same process.
//!
//! This module is the single serialization point:
//!
//! * a test that **flips** a toggle holds [`ablation_exclusive`] for the
//!   flipped region (the RAII helpers [`lockmeter::serialized_ablation`](crate::lockmeter::serialized_ablation)
//!   and
//!   `wire::zero_copy_ablation` take it for you and restore the previous
//!   value on drop);
//! * a test that **asserts** toggle-sensitive meter readings holds
//!   [`ablation_shared`] — meter tests run in parallel with each other
//!   but never overlap a flip.
//!
//! Benchmark binaries are single-threaded mains and may keep calling the
//! raw setters. The guards are not reentrant: take at most one per
//! thread (flipping both toggles in one region is a benchmark-only
//! pattern).

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

static ABLATION: RwLock<()> = RwLock::new(());

/// Shared guard held while asserting toggle-sensitive meter readings.
pub type AblationReadGuard = RwLockReadGuard<'static, ()>;

/// Exclusive guard held while a toggle is flipped away from its default.
pub type AblationWriteGuard = RwLockWriteGuard<'static, ()>;

/// Acquire the shared side of the ablation lock: the toggles are
/// guaranteed to stay at their current values while the guard lives.
pub fn ablation_shared() -> AblationReadGuard {
    ABLATION.read()
}

/// Acquire the exclusive side of the ablation lock: the caller may flip
/// process-global ablation toggles until the guard drops.
pub fn ablation_exclusive() -> AblationWriteGuard {
    ABLATION.write()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_guards_coexist_and_exclude_the_flipper() {
        let a = ablation_shared();
        let b = ablation_shared();
        // An exclusive guard must not be obtainable while readers live.
        assert!(ABLATION.try_write().is_none());
        drop(a);
        drop(b);
        let w = ablation_exclusive();
        assert!(ABLATION.try_read().is_none());
        drop(w);
    }
}
