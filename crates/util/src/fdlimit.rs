//! File-descriptor limit introspection and raising.
//!
//! The C10K tests and the `pr6_reactor` bench hold thousands of
//! sockets in one process; default `ulimit -n` soft limits (often 1024)
//! would fail them spuriously. [`raise_soft_to_hard`] lifts the soft
//! `RLIMIT_NOFILE` to whatever hard ceiling the process already has —
//! no privileges required — and returns the resulting soft limit so
//! callers can scale their connection targets to what the environment
//! actually allows.

use std::io;

#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_int;

    pub const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    pub struct RLimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    extern "C" {
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return the new
/// soft limit. On non-Linux platforms this is a no-op returning a
/// conservative guess (1024).
pub fn raise_soft_to_hard() -> io::Result<u64> {
    #[cfg(target_os = "linux")]
    {
        let mut lim = sys::RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid, live `#[repr(C)]` RLimit out-param;
        // getrlimit only writes within it.
        if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.rlim_cur < lim.rlim_max {
            let want = sys::RLimit {
                rlim_cur: lim.rlim_max,
                rlim_max: lim.rlim_max,
            };
            // SAFETY: `want` is a valid `#[repr(C)]` RLimit read by the
            // kernel; setrlimit has no memory effects in this process.
            if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } != 0 {
                // Keep whatever we had; the caller scales to the return.
                return Ok(lim.rlim_cur);
            }
            return Ok(lim.rlim_max);
        }
        Ok(lim.rlim_cur)
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(1024)
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn soft_limit_reaches_hard_limit() {
        let soft = raise_soft_to_hard().unwrap();
        let mut lim = sys::RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: valid out-param, as in raise_soft_to_hard.
        assert_eq!(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) }, 0);
        assert_eq!(soft, lim.rlim_cur);
        assert_eq!(lim.rlim_cur, lim.rlim_max);
    }
}
