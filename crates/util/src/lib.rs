//! # blobseer-util
//!
//! Shared, dependency-light substrates used across the `blobseer-rs`
//! workspace:
//!
//! * [`fxhash`] — the rustc `FxHash` algorithm plus map/set aliases; the
//!   default hasher for every hot map in the system (tree-node keys, page
//!   keys, DHT buckets).
//! * [`sharded`] — a sharded concurrent hash map with short critical
//!   sections, used where a full lock-free map is not required and no lock
//!   is ever held across I/O.
//! * [`lru`] — an intrusive, slab-backed LRU cache, the substrate of the
//!   client-side metadata-tree cache (the paper's 2^20-node cache).
//! * [`interval_map`] — a disjoint interval map over `u64` with
//!   monotone range-assign and range-max queries; backs the version
//!   manager's *version index* (border-link precomputation) and the GC
//!   sweep.
//! * [`stats`] — online statistics and human-readable formatting for the
//!   benchmark harnesses.
//! * [`sync`] — tiny synchronization helpers (a parking one-shot slot and a
//!   spin-then-park waiter) used by the RPC layer and the publish window.
//! * [`rng`] — splitmix64 and deterministic seeding helpers so every
//!   simulation and test is reproducible.
//! * [`pagebuf`] — [`PageBuf`], the cheap-clone immutable byte buffer
//!   behind the zero-copy page path (proto → rpc → provider → client);
//!   pages are copied into the system at most once and shared by
//!   refcount everywhere else. Backed by a heap allocation or, via
//!   [`PageBuf::map_file`], a read-only mapped file region — the seam
//!   the persistent provider backend serves its page log through.
//! * [`copymeter`] — global bytes-copied accounting, so the zero-copy
//!   discipline is *measured* by the benches, not asserted.
//! * [`lockmeter`] — the control-plane analogue of [`copymeter`]: global
//!   accounting of control-plane lock acquisitions by class
//!   (serializing / version-assign / sharded / shared), plus the
//!   serialized-control-plane ablation flag. The zero-serialization
//!   invariant is asserted by `crates/core/tests/lock_free.rs`.
//! * [`recordlog`] — the shared record-then-commit append-only log
//!   engine (48-byte checksummed headers, tombstones, group-commit
//!   markers) extracted from the provider's page log, plus
//!   [`recordlog::RecordLog`], the plain-file variant the durable
//!   control plane (metadata tree, version history) journals through.
//! * [`rcu`] — [`RcuCell`], wait-free reads of a rarely replaced
//!   snapshot (retention-based reclamation); the substrate of the
//!   provider manager's lock-free roster.
//! * [`clockcache`] — [`ClockCache`], a sharded concurrent CLOCK cache
//!   whose hits are a shard read lock plus an atomic reference bit; the
//!   substrate of the shared client metadata cache.
//! * [`testsync`] — the shared test-serialization lock guarding the
//!   process-global ablation toggles against `cargo test`'s parallel
//!   runner.
//! * [`fdlimit`] — raise the soft `RLIMIT_NOFILE` to the hard ceiling,
//!   so the C10K transport tests and benches can hold thousands of
//!   sockets regardless of the environment's default `ulimit -n`.

#![warn(missing_docs)]

pub mod clockcache;
pub mod copymeter;
pub mod fdlimit;
pub mod fxhash;
pub mod interval_map;
pub mod lockmeter;
pub mod lru;
pub mod pagebuf;
pub mod rcu;
pub mod recordlog;
pub mod rng;
pub mod sharded;
pub mod stats;
pub mod sync;
pub mod testsync;

pub use clockcache::ClockCache;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interval_map::IntervalMap;
pub use lru::LruCache;
pub use pagebuf::PageBuf;
pub use rcu::RcuCell;
pub use sharded::ShardedMap;
