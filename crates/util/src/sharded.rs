//! A sharded concurrent hash map.
//!
//! Used for in-memory stores whose critical sections are a handful of
//! instructions (page tables, DHT buckets, blob registries). Sharding by
//! key hash keeps contention negligible; the lock discipline of the whole
//! workspace is that **no shard lock is ever held across a network
//! operation** — see DESIGN.md §3.

use crate::fxhash::{mix64, FxBuildHasher, FxHashMap};
use parking_lot::RwLock;
use std::hash::{BuildHasher, Hash};

/// A concurrent hash map split into `2^shift` independently locked shards.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<FxHashMap<K, V>>>,
    mask: usize,
    hasher: FxBuildHasher,
}

impl<K: Eq + Hash, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::with_shards(64)
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Create with `shards` shards (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| RwLock::new(FxHashMap::default())).collect(),
            mask: n - 1,
            hasher: FxBuildHasher::default(),
        }
    }

    fn shard_for(&self, key: &K) -> &RwLock<FxHashMap<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(mix64(h) as usize) & self.mask]
    }

    /// Insert, returning the previous value if present.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Remove, returning the value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).write().remove(key)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).read().contains_key(key)
    }

    /// Total number of entries (sums shard sizes; O(#shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Remove every entry.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    /// Run `f` on the value for `key`, if present.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.shard_for(key).read().get(key).map(f)
    }

    /// Run `f` on a mutable reference to the value for `key`, if present.
    pub fn with_mut<R>(&self, key: &K, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        self.shard_for(key).write().get_mut(key).map(f)
    }

    /// Get-or-insert with a constructor, then run `f` on the value.
    pub fn with_or_insert<R>(
        &self,
        key: K,
        make: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let shard = self.shard_for(&key);
        let mut guard = shard.write();
        let v = guard.entry(key).or_insert_with(make);
        f(v)
    }

    /// Snapshot every key (allocates; intended for GC/administration, not
    /// the data path).
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.read().keys().cloned());
        }
        out
    }

    /// Fold over all entries. Shards are visited one at a time so the map
    /// stays available to other threads in between.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        let mut acc = init;
        for s in &self.shards {
            let g = s.read();
            for (k, v) in g.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }

    /// Remove entries for which `pred` returns true; returns how many were
    /// removed. Used by the GC sweep.
    pub fn retain_not(&self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for s in &self.shards {
            let mut g = s.write();
            let before = g.len();
            g.retain(|k, v| !pred(k, v));
            removed += before - g.len();
        }
        removed
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// Clone the value for `key` out of the map.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        self.shard_for(key).read().get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_remove() {
        let m: ShardedMap<u64, String> = ShardedMap::default();
        assert_eq!(m.insert(1, "one".into()), None);
        assert_eq!(m.insert(1, "uno".into()), Some("one".into()));
        assert_eq!(m.get_cloned(&1), Some("uno".into()));
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some("uno".into()));
        assert!(m.is_empty());
    }

    #[test]
    fn with_or_insert_initializes_once() {
        let m: ShardedMap<u32, Vec<u32>> = ShardedMap::with_shards(4);
        m.with_or_insert(7, Vec::new, |v| v.push(1));
        m.with_or_insert(7, Vec::new, |v| v.push(2));
        assert_eq!(m.get_cloned(&7), Some(vec![1, 2]));
    }

    #[test]
    fn retain_not_removes_matching() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(8);
        for i in 0..100 {
            m.insert(i, i);
        }
        let removed = m.retain_not(|_, v| v % 2 == 0);
        assert_eq!(removed, 50);
        assert_eq!(m.len(), 50);
        assert!(!m.contains_key(&2));
        assert!(m.contains_key(&3));
    }

    #[test]
    fn fold_sums_everything() {
        let m: ShardedMap<u32, u64> = ShardedMap::with_shards(8);
        for i in 0..100u32 {
            m.insert(i, i as u64);
        }
        let sum = m.fold(0u64, |a, _, v| a + v);
        assert_eq!(sum, 4950);
    }

    #[test]
    fn concurrent_inserts_land() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::with_shards(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.insert(t * 1000 + i, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 8000);
    }

    #[test]
    fn concurrent_mixed_ops_do_not_lose_disjoint_keys() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::with_shards(4));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 10_000 + i;
                        m.insert(k, k);
                        assert_eq!(m.get_cloned(&k), Some(k));
                        if i % 2 == 0 {
                            m.remove(&k);
                        }
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 4 * 250);
    }
}
