//! Property tests: `IntervalMap` against a naive per-byte model.

use blobseer_util::IntervalMap;
use proptest::prelude::*;

const UNIVERSE: u64 = 256;

#[derive(Debug, Clone)]
enum Op {
    Assign { start: u64, end: u64, value: u64 },
    RangeMax { start: u64, end: u64 },
    Point { at: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..UNIVERSE, 0..UNIVERSE, 1..100u64).prop_map(|(a, b, value)| Op::Assign {
            start: a.min(b),
            end: a.max(b),
            value,
        }),
        (0..UNIVERSE, 0..UNIVERSE).prop_map(|(a, b)| Op::RangeMax {
            start: a.min(b),
            end: a.max(b)
        }),
        (0..UNIVERSE).prop_map(|at| Op::Point { at }),
    ]
}

/// The naive model: one Option<u64> per byte.
struct Model {
    bytes: Vec<Option<u64>>,
}

impl Model {
    fn new() -> Self {
        Self {
            bytes: vec![None; UNIVERSE as usize],
        }
    }

    fn assign(&mut self, start: u64, end: u64, v: u64) {
        for b in &mut self.bytes[start as usize..end as usize] {
            *b = Some(v);
        }
    }

    fn range_max(&self, start: u64, end: u64) -> Option<u64> {
        self.bytes[start as usize..end as usize]
            .iter()
            .filter_map(|b| *b)
            .max()
    }

    fn point(&self, at: u64) -> Option<u64> {
        self.bytes[at as usize]
    }

    fn covered(&self) -> u64 {
        self.bytes.iter().filter(|b| b.is_some()).count() as u64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interval_map_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut map: IntervalMap<u64> = IntervalMap::new();
        let mut model = Model::new();
        for op in ops {
            match op {
                Op::Assign { start, end, value } => {
                    map.assign(start, end, value);
                    model.assign(start, end, value);
                }
                Op::RangeMax { start, end } => {
                    prop_assert_eq!(map.range_max(start, end), model.range_max(start, end));
                }
                Op::Point { at } => {
                    prop_assert_eq!(map.get(at), model.point(at));
                }
            }
            prop_assert_eq!(map.covered(), model.covered());
        }
    }

    #[test]
    fn runs_are_disjoint_sorted_and_coalesced(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let mut map: IntervalMap<u64> = IntervalMap::new();
        for op in ops {
            if let Op::Assign { start, end, value } = op {
                map.assign(start, end, value);
            }
        }
        let runs: Vec<_> = map.iter().collect();
        for w in runs.windows(2) {
            let (s0, e0, v0) = w[0];
            let (s1, _e1, v1) = w[1];
            prop_assert!(s0 < e0, "run non-empty");
            prop_assert!(e0 <= s1, "runs sorted and disjoint");
            if e0 == s1 {
                prop_assert_ne!(v0, v1, "adjacent equal runs must be coalesced");
            }
        }
    }

    #[test]
    fn overlaps_union_equals_range(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        q in (0..UNIVERSE, 0..UNIVERSE)
    ) {
        let (qa, qb) = (q.0.min(q.1), q.0.max(q.1));
        let mut map: IntervalMap<u64> = IntervalMap::new();
        let mut model = Model::new();
        for op in ops {
            if let Op::Assign { start, end, value } = op {
                map.assign(start, end, value);
                model.assign(start, end, value);
            }
        }
        let mut reconstructed = vec![None; UNIVERSE as usize];
        for (s, e, v) in map.overlaps(qa, qb) {
            prop_assert!(qa <= s && e <= qb, "clipped to window");
            for x in s..e {
                prop_assert!(reconstructed[x as usize].is_none(), "no double cover");
                reconstructed[x as usize] = Some(v);
            }
        }
        for x in qa..qb {
            prop_assert_eq!(reconstructed[x as usize], model.point(x));
        }
    }
}
