//! Multi-threaded stress tests for the sharded CLOCK cache: concurrent
//! insert/get/remove under eviction pressure, the capacity-1-per-shard
//! edge case, and statistics consistency.

use blobseer_util::ClockCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_churn_stays_consistent() {
    // Far more keys than capacity: every thread forces evictions in
    // every shard while others read and remove.
    let cache: Arc<ClockCache<u64, Arc<u64>>> = Arc::new(ClockCache::with_shards(256, 8));
    let gets = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let gets = Arc::clone(&gets);
            thread::spawn(move || {
                for i in 0..5_000u64 {
                    let key = (t * 37 + i) % 1024; // overlapping key space
                    match i % 5 {
                        0 | 1 => cache.insert(key, Arc::new(key * 2)),
                        4 if i % 25 == 4 => {
                            cache.remove(&key);
                        }
                        _ => {
                            gets.fetch_add(1, Ordering::Relaxed);
                            if let Some(v) = cache.get(&key) {
                                // A hit must return the value stored
                                // under that key, never a torn mix.
                                assert_eq!(*v, key * 2);
                            }
                        }
                    }
                    assert!(cache.len() <= cache.capacity());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (hits, misses) = cache.stats();
    assert_eq!(
        hits + misses,
        gets.load(Ordering::Relaxed),
        "every probe is exactly one hit or one miss"
    );
    assert!(cache.len() <= cache.capacity());
    // Everything still reachable is readable.
    for key in 0..1024u64 {
        if let Some(v) = cache.get(&key) {
            assert_eq!(*v, key * 2);
        }
    }
}

#[test]
fn capacity_one_per_shard_edge_case() {
    // Each shard holds exactly one slot: every colliding insert must
    // evict, the hand must keep cycling a length-1 slab, and nothing
    // may panic or exceed capacity.
    let cache: Arc<ClockCache<u64, u64>> = Arc::new(ClockCache::with_shards(4, 4));
    assert_eq!(cache.capacity(), 4);
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = t * 1000 + (i % 64);
                    cache.insert(key, key);
                    if let Some(v) = cache.get(&key) {
                        assert_eq!(v, key);
                    }
                    if i % 7 == 0 {
                        cache.remove(&key);
                    }
                    assert!(cache.len() <= 4);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert!(cache.len() <= 4);
    // Single-threaded sanity after the storm: the cache still caches.
    cache.insert(42, 42);
    assert_eq!(cache.get(&42), Some(42));
}

#[test]
fn shared_reader_scaling_smoke() {
    // Many readers hammering a warm cache concurrently: all hits, stats
    // add up, values intact. (This is the co-located-reader regime the
    // shared metadata cache exists for.)
    // Generous capacity so no shard can overflow whatever the key
    // distribution: all 128 keys stay resident for the whole test.
    let cache: Arc<ClockCache<u64, Arc<Vec<u8>>>> = Arc::new(ClockCache::with_shards(1024, 8));
    for key in 0..128u64 {
        cache.insert(key, Arc::new(vec![key as u8; 32]));
    }
    let (h0, _) = cache.stats();
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                for i in 0..10_000u64 {
                    let key = i % 128;
                    let v = cache.get(&key).expect("warm cache never misses");
                    assert_eq!(v[0], key as u8);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    let (h1, _) = cache.stats();
    assert_eq!(h1 - h0, 8 * 10_000);
}
