//! Property test: `LruCache` against a vector-backed reference model.

use blobseer_util::LruCache;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Get(u16),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64u16, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..64u16).prop_map(Op::Get),
        (0..64u16).prop_map(Op::Remove),
    ]
}

/// Reference model: Vec ordered most-recently-used first.
struct Model {
    cap: usize,
    items: Vec<(u16, u32)>,
}

impl Model {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            items: Vec::new(),
        }
    }

    fn insert(&mut self, k: u16, v: u32) -> Option<(u16, u32)> {
        if let Some(pos) = self.items.iter().position(|(ik, _)| *ik == k) {
            self.items.remove(pos);
            self.items.insert(0, (k, v));
            return None;
        }
        let evicted = if self.items.len() >= self.cap {
            Some(self.items.pop().unwrap())
        } else {
            None
        };
        self.items.insert(0, (k, v));
        evicted
    }

    fn get(&mut self, k: u16) -> Option<u32> {
        let pos = self.items.iter().position(|(ik, _)| *ik == k)?;
        let item = self.items.remove(pos);
        self.items.insert(0, item);
        Some(item.1)
    }

    fn remove(&mut self, k: u16) -> Option<u32> {
        let pos = self.items.iter().position(|(ik, _)| *ik == k)?;
        Some(self.items.remove(pos).1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_model(
        cap in 1usize..16,
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let mut lru = LruCache::new(cap);
        let mut model = Model::new(cap);
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let a = lru.insert(k, v);
                    let b = model.insert(k, v);
                    prop_assert_eq!(a, b);
                }
                Op::Get(k) => {
                    prop_assert_eq!(lru.get(&k).copied(), model.get(k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(lru.remove(&k), model.remove(k));
                }
            }
            prop_assert_eq!(lru.len(), model.items.len());
            let mru: Vec<u16> = lru.iter_mru().map(|(k, _)| *k).collect();
            let model_order: Vec<u16> = model.items.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(mru, model_order, "recency order must match");
        }
    }
}
