//! # blobseer
//!
//! A from-scratch Rust reproduction of
//! **"Enabling Lock-Free Concurrent Fine-Grain Access to Massive
//! Distributed Data: Application to Supernovae Detection"**
//! (Nicolae, Antoniu, Bougé — IEEE CLUSTER 2008), the design that became
//! the BlobSeer storage system.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `blobseer-core` | [`Deployment`], [`BlobClient`], [`LocalEngine`] |
//! | [`meta`] | `blobseer-meta` | segment-tree algorithms, [`ReferenceStore`] |
//! | [`version`] | `blobseer-version` | version manager internals |
//! | [`proto`] | `blobseer-proto` | ids, geometry, messages, codec |
//! | [`rpc`] | `blobseer-rpc` | RPC framework with call aggregation |
//! | [`simnet`] | `blobseer-simnet` | simulated cluster + cost model |
//! | [`dht`] | `blobseer-dht` | metadata-provider DHT |
//! | [`provider`] | `blobseer-provider` | data provider + provider manager |
//! | [`baseline`] | `blobseer-baseline` | lock-based comparators |
//! | [`sky`] | `blobseer-sky` | the supernova-detection application |
//!
//! ## Quickstart
//!
//! ```
//! use blobseer::{Deployment, DeploymentConfig, Ctx, Segment};
//!
//! // A 4-storage-node cluster (zero-cost transport for this doc test).
//! let cluster = Deployment::build(DeploymentConfig::functional(4));
//! let client = cluster.client();
//! let mut ctx = Ctx::start();
//!
//! // ALLOC a 1 MiB blob with 4 KiB pages.
//! let blob = client.alloc(&mut ctx, 1 << 20, 4096).unwrap().blob;
//!
//! // WRITE produces a new immutable snapshot version.
//! let v1 = client.write(&mut ctx, blob, 0, &vec![7u8; 8192]).unwrap();
//! let v2 = client.write(&mut ctx, blob, 4096, &vec![9u8; 4096]).unwrap();
//! assert_eq!((v1, v2), (1, 2));
//!
//! // READ any published version — snapshots never change.
//! let (old, latest) = client.read(&mut ctx, blob, Some(v1), Segment::new(4096, 4096)).unwrap();
//! assert_eq!(latest, 2);
//! assert!(old.iter().all(|&b| b == 7)); // v1 view
//! let (new, _) = client.read(&mut ctx, blob, Some(v2), Segment::new(4096, 4096)).unwrap();
//! assert!(new.iter().all(|&b| b == 9)); // v2 view
//! ```
//!
//! Version assignment is grant-batched (one metered acquisition of the
//! per-blob mutex serves a whole queue of concurrent writers), and the
//! version manager itself can be sharded across nodes by blob id:
//!
//! ```
//! use blobseer::{Deployment, DeploymentConfig};
//!
//! // Three version-manager shards: blob ids route by `id % 3`, each
//! // shard journals (and replays) independently. `version_shards: 1`
//! // — the default — is bit-identical to the classic singleton.
//! let cluster = Deployment::build(
//!     DeploymentConfig::functional(4).tune().version_shards(3).build(),
//! );
//! assert_eq!(cluster.registries.len(), 3);
//! ```
//!
//! ## Zero-copy data path
//!
//! Pages are immutable once written, so they travel the whole system as
//! refcounted [`PageBuf`]s: `write` copies the caller's buffer exactly
//! once (and [`BlobClient::write_buf`] not at all), replica fan-out and
//! RPC batching share that one allocation, and reads copy each page
//! exactly once into the result. `read_into` scatter-assembles into a
//! caller-provided buffer; a single-page aligned
//! [`BlobClient::read_buf`] is zero-copy end to end.
//!
//! ```
//! use blobseer::{Ctx, Deployment, DeploymentConfig, PageBuf, Segment};
//!
//! let cluster = Deployment::build(DeploymentConfig::functional(4));
//! let client = cluster.client();
//! let mut ctx = Ctx::start();
//! let blob = client.alloc(&mut ctx, 1 << 20, 4096).unwrap().blob;
//!
//! // Zero-copy write: the buffer is shared, never duplicated.
//! let buf = PageBuf::from_vec(vec![5u8; 8192]);
//! let v = client.write_buf(&mut ctx, blob, 0, buf).unwrap();
//!
//! // Scatter-assembling read into a caller-owned buffer.
//! let mut out = vec![0u8; 8192];
//! client.read_into(&mut ctx, blob, Some(v), Segment::new(0, 8192), &mut out).unwrap();
//! assert!(out.iter().all(|&b| b == 5));
//!
//! // Single-page aligned read: the returned PageBuf is a refcount
//! // borrow of the stored page — zero copies.
//! let (page, _) = client.read_buf(&mut ctx, blob, Some(v), Segment::new(0, 4096)).unwrap();
//! assert!(page.iter().all(|&b| b == 5));
//! ```
//!
//! ## Real network transport
//!
//! The same stack runs over genuine TCP sockets
//! ([`rpc::TcpTransport`]): select it per deployment and every frame is
//! **gather-written** straight from its segment chain (`writev`, no
//! flattening memcpy) and decoded out of a single receive buffer whose
//! payload ranges are **lent by refcount** — the payload leg meters the
//! same byte counts as the in-process path.
//!
//! ```
//! use blobseer::{Ctx, Deployment, DeploymentConfig, Segment};
//!
//! // Same topology, but vm/pm/storage each listen on a loopback port.
//! let cluster = Deployment::build(DeploymentConfig::functional_tcp(4));
//! let client = cluster.client();
//! let mut ctx = Ctx::start();
//! let blob = client.alloc(&mut ctx, 1 << 20, 4096).unwrap().blob;
//!
//! let v = client.write(&mut ctx, blob, 0, &vec![3u8; 8192]).unwrap();
//! let (data, _) = client.read(&mut ctx, blob, Some(v), Segment::new(0, 8192)).unwrap();
//! assert!(data.iter().all(|&b| b == 3));
//!
//! // It really crossed the kernel: the transport is addressable.
//! let tcp = cluster.cluster.tcp().unwrap();
//! assert!(tcp.addr(cluster.vm_node).is_some());
//! ```
//!
//! Faults surface as typed errors, never hangs: connect refused, a peer
//! closing mid-frame, timeouts, and corrupt length prefixes all map to
//! [`BlobError::Unreachable`] / [`BlobError::Codec`]; a failed call's
//! connection is dropped, not pooled. See `blobseer_rpc::tcp` for the
//! wire format and the full error taxonomy, and `bench/pr3_tcp`
//! (`BENCH_PR3.json`) for the gather-write vs flatten ablation.
//!
//! The server side is an **event-driven reactor** ([`ServerMode::Reactor`],
//! the default): a fixed set of nonblocking event loops owns every
//! accepted connection and a bounded dispatch pool runs the service
//! handlers, so ten thousand established connections are served by the
//! same handful of threads as one (`crates/rpc/tests/c10k.rs` asserts
//! exactly that). The client multiplexes: the wire envelope (v2)
//! carries a **correlation id**, so one socket carries many in-flight
//! calls, each completed through its own slot — connection errors fail
//! every call in flight with a typed error, never a hang. The PR 3
//! thread-per-connection regime survives as the
//! [`ServerMode::ThreadPerConn`] ablation toggle
//! ([`TcpOptions::server_mode`]); `bench/pr6_reactor`
//! (`BENCH_PR6.json`) sweeps the two regimes' per-connection memory,
//! thread counts, and accept-to-first-byte latency against each other.
//! Overload is shed, not queued: past the fd budget (or
//! [`TcpOptions::max_connections`]) the *newest* connection gets a
//! typed control-frame close — established connections are never
//! sacrificed for new ones.
//!
//! ## Persistent deployments
//!
//! Providers can keep their pages on a **persistent storage backend**
//! ([`BackendKind::Mmap`]) instead of process memory: every
//! acknowledged page is appended to a per-provider page log and then
//! served as a refcounted slice of a read-only memory mapping of that
//! log — the same zero-copy discipline (one sanctioned copy in, one
//! out), now backed by the page cache. The log is **crash-consistent**:
//! an append is acknowledged only once a group-commit marker covers it
//! (`DeploymentConfig::log.fsync_on_commit` upgrades that promise from
//! process-crash to power-loss durability), so a provider restarted on
//! the directory it died with — even after a `SIGKILL` mid-append —
//! replays the log and re-serves every page it acknowledged, losing at
//! most uncommitted tails:
//!
//! ```
//! use blobseer::{BackendKind, Ctx, Deployment, DeploymentConfig, Segment};
//!
//! // Same topology; every provider gets an append-only mapped page log.
//! let mut cfg = DeploymentConfig::functional_mmap(4);
//! cfg.replication = 2;
//! cfg.meta_replication = 2;
//! let cluster = Deployment::build(cfg);
//! let client = cluster.client();
//! let mut ctx = Ctx::start();
//! let blob = client.alloc(&mut ctx, 1 << 20, 4096).unwrap().blob;
//! let v = client.write(&mut ctx, blob, 0, &vec![7u8; 8192]).unwrap();
//!
//! // Kill a provider; replicas carry the reads through the outage.
//! cluster.kill_storage(0);
//! let (data, _) = client.read(&mut ctx, blob, Some(v), Segment::new(0, 8192)).unwrap();
//! assert!(data.iter().all(|&b| b == 7));
//!
//! // Restart it on the same directory: the log replays and the
//! // provider re-serves everything it ever acknowledged.
//! cluster.restart_storage(0);
//! assert_eq!(cluster.config.backend, BackendKind::Mmap);
//! let (data, _) = client.read(&mut ctx, blob, Some(v), Segment::new(0, 8192)).unwrap();
//! assert!(data.iter().all(|&b| b == 7));
//! ```
//!
//! The log is append-only, so dropped and superseded pages accumulate
//! as **dead bytes** until an **online compaction** rewrites the live
//! pages into a fresh generation file and reclaims the rest. It runs
//! automatically past the configured threshold
//! (`DeploymentConfig::log`), or on demand — readers are never
//! invalidated, because already-served buffers keep the old
//! generation's mapping alive by refcount:
//!
//! ```
//! use blobseer::{Ctx, Deployment, DeploymentConfig, Segment};
//!
//! let cluster = Deployment::build(DeploymentConfig::functional_mmap(2));
//! let client = cluster.client();
//! let mut ctx = Ctx::start();
//! let blob = client.alloc(&mut ctx, 1 << 20, 4096).unwrap().blob;
//!
//! // Four versions of the same region; then collect the first three.
//! let mut latest = 0;
//! for round in 0u8..4 {
//!     latest = client.write(&mut ctx, blob, 0, &vec![round; 16384]).unwrap();
//! }
//! client.gc(&mut ctx, blob, latest).unwrap();
//!
//! // ¾ of the log is now dead weight; compaction hands it back.
//! for i in 0..2 {
//!     let before = cluster.storage[i].data().stats();
//!     let report = cluster.compact_storage(i).unwrap().expect("mmap compacts");
//!     assert!(report.reclaimed_bytes >= before.dead_bytes * 9 / 10);
//!     assert_eq!(cluster.storage[i].data().stats().dead_bytes, 0);
//! }
//!
//! // The survivor reads back intact — also after a restart on the
//! // compacted generation.
//! cluster.kill_storage(0);
//! cluster.restart_storage(0);
//! let (data, _) = client.read(&mut ctx, blob, Some(latest), Segment::new(0, 16384)).unwrap();
//! assert!(data.iter().all(|&b| b == 3));
//! ```
//!
//! ## Whole-cluster cold restart
//!
//! Since PR 7 the *control plane* shares the page log's guarantee: on
//! the mmap backend every storage node journals its metadata-tree
//! mutations write-ahead (`meta.g<N>.log`) and the version manager
//! journals blob creation and every publish before acknowledging it
//! (`version.g<N>.log`) — all three logs ride the same
//! record-then-commit engine (`blobseer_util::recordlog`). So the
//! cluster doesn't just tolerate a provider crash; the *product can
//! reboot*: [`Deployment::restart_cluster`] kills the version manager,
//! the provider manager, and every storage node, replays every journal,
//! and re-serves every acknowledged write byte-identical:
//!
//! ```
//! use blobseer::{Ctx, Deployment, DeploymentConfig, Segment};
//!
//! let mut cluster = Deployment::build(DeploymentConfig::functional_mmap(4));
//! let client = cluster.client();
//! let mut ctx = Ctx::start();
//! let blob = client.alloc(&mut ctx, 1 << 20, 4096).unwrap().blob;
//! let v1 = client.write(&mut ctx, blob, 0, &vec![1u8; 8192]).unwrap();
//! let v2 = client.write(&mut ctx, blob, 4096, &vec![2u8; 4096]).unwrap();
//!
//! // Kill EVERYTHING — version manager, provider manager, every
//! // storage node — and replay the journals from disk.
//! cluster.restart_cluster().unwrap();
//!
//! // Geometry, the version map, and every snapshot survived.
//! let (old, latest) = client.read(&mut ctx, blob, Some(v1), Segment::new(4096, 4096)).unwrap();
//! assert_eq!(latest, v2);
//! assert!(old.iter().all(|&b| b == 1)); // v1 view, byte-identical
//!
//! // And the reborn cluster keeps counting where it left off.
//! let v3 = client.write(&mut ctx, blob, 0, &vec![3u8; 4096]).unwrap();
//! assert_eq!(v3, v2 + 1);
//! ```
//!
//! The memory backend is the documented negative control: nothing
//! persists, so `restart_cluster` yields a *clean, empty* cluster and
//! reads of pre-restart blobs fail with a typed
//! [`BlobError::UnknownBlob`] — never stale or torn state. Replay
//! failures (truncated journals, hostile bytes) surface as
//! [`BlobError::Recovery`] with file and offset context, never a
//! panic.
//!
//! The `{Sim, Tcp} × {Memory, Mmap}` pairings are conformance-tested as
//! a CI matrix (`crates/core/tests/matrix_e2e.rs`, including the
//! write → drop → compact → restart scenario and the whole-cluster
//! cold-restart scenario); crash recovery is
//! exercised end to end in `crates/core/tests/backend_recovery.rs` and
//! — with a real `SIGKILL` at fuzzed offsets mid-append, mid-compaction
//! and mid-publish, against single providers and the whole cluster —
//! in `crates/core/tests/crash_injection.rs`;
//! `bench/pr4_backend` (`BENCH_PR4.json`) sweeps both backends over TCP
//! while asserting copies-per-op stays at exactly the sanctioned 1 MiB
//! per 1 MiB operation, `bench/pr5_durability` (`BENCH_PR5.json`)
//! sweeps the commit modes (buffered vs fsync-on-commit) and the
//! compaction before/after under the same copy and lock gates, and
//! `bench/pr7_restart` (`BENCH_PR7.json`) times cold-restart replay
//! against journal size while holding the steady-state parity gates
//! with every journal on.
//!
//! ## Static invariant enforcement
//!
//! The meters only see paths the tests and benches exercise, so the
//! invariants above are *also* enforced statically: `blobseer-lint`
//! (`crates/lint`, a dependency-free offline pass, gated hard in CI)
//! checks every Rust source in the workspace for unmetered
//! control-plane locks, unmetered payload copies, undocumented
//! `unsafe`, panics on serving paths, raw ablation toggles, and
//! silently truncating length casts. Run it locally with
//! `cargo run -p blobseer-lint -- --workspace`; deliberate exceptions
//! carry a `// lint: allow(<rule>) — <rationale>` sanction at the
//! site. The rule catalog lives in the `blobseer_lint::rules` rustdoc
//! and ROADMAP.md ("Static invariant enforcement").

#![deny(unsafe_code)]

pub use blobseer_baseline as baseline;
pub use blobseer_core as core;
pub use blobseer_dht as dht;
pub use blobseer_meta as meta;
pub use blobseer_proto as proto;
pub use blobseer_provider as provider;
pub use blobseer_rpc as rpc;
pub use blobseer_simnet as simnet;
pub use blobseer_sky as sky;
pub use blobseer_util as util;
pub use blobseer_version as version;

pub use blobseer_core::{
    AdmissionMode, AdmissionOptions, BackendKind, BlobClient, ClusterHandle, Deployment,
    DeploymentConfig, FanOutOptions, LocalEngine, ReadOptions, RetryPolicy, TransportKind,
    WriteOptions,
};
pub use blobseer_meta::ReferenceStore;
pub use blobseer_proto::{BlobError, BlobId, Geometry, PageBuf, Segment, Version};
pub use blobseer_rpc::{AggregationPolicy, Ctx, ServerMode, TcpOptions, TcpTransport};
pub use blobseer_simnet::{ClientCosts, CostModel, ServiceCosts};
